#include "tensor/execution_context.h"

#include <algorithm>
#include <new>

#include "tensor/simd.h"
#include "tensor/threadpool.h"

namespace tbnet {

namespace {
// First block size; small enough not to matter for tiny models, large
// enough that CIFAR-scale im2col buffers fit in one or two blocks.
constexpr int64_t kMinBlockFloats = 1 << 14;  // 64 KiB

// Alignment unit in floats. Block bases are allocated 64-byte aligned and
// the bump position only ever advances in whole units, so every pointer
// alloc() hands out stays 64-byte aligned — including after ArenaScope
// rewinds, which restore a position that was itself unit-rounded.
constexpr int64_t kAlignFloats = simd::kAlign / static_cast<int64_t>(sizeof(float));

int64_t round_up_align(int64_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}
}  // namespace

void WorkspaceArena::AlignedDeleter::operator()(float* p) const {
  ::operator delete[](p, std::align_val_t(simd::kAlign));
}

float* WorkspaceArena::alloc(int64_t n) {
  if (n <= 0) n = 1;
  n = round_up_align(n);
  // Advance the frontier until a block with room is found.
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.size - b.used >= n) {
      float* p = b.data.get() + b.used;
      b.used += n;
      return p;
    }
    if (active_ + 1 == blocks_.size()) break;
    ++active_;
  }
  // Grow: geometric so the block count stays O(log total). The new block
  // goes at the end and becomes the frontier.
  const int64_t last = blocks_.empty() ? 0 : blocks_.back().size;
  const int64_t size = std::max({n, kMinBlockFloats, 2 * last});
  float* raw = new (std::align_val_t(simd::kAlign))
      float[static_cast<size_t>(size)];
  blocks_.push_back(
      Block{std::unique_ptr<float[], AlignedDeleter>(raw), size, n});
  active_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

WorkspaceArena::Mark WorkspaceArena::mark() const {
  if (blocks_.empty()) return Mark{0, 0};
  return Mark{active_, blocks_[active_].used};
}

void WorkspaceArena::rewind(const Mark& m) {
  if (blocks_.empty()) return;
  for (size_t i = std::min(m.block, blocks_.size() - 1) + 1;
       i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  active_ = std::min(m.block, blocks_.size() - 1);
  blocks_[active_].used = std::min(m.used, blocks_[active_].size);
}

void WorkspaceArena::reset() { rewind(Mark{0, 0}); }

int64_t WorkspaceArena::capacity_floats() const {
  int64_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

ThreadPool& ExecutionContext::pool() const {
  return pool_ != nullptr ? *pool_ : ThreadPool::global();
}

void ExecutionContext::parallel_for(
    int64_t n, const std::function<void(int64_t, int64_t)>& fn) const {
  pool().parallel_for(n, fn, intra_op_width_);
}

int64_t ExecutionContext::chunk_size(int64_t n) const {
  return pool().chunk_size(n, intra_op_width_);
}

ExecutionContext& default_execution_context() {
  // One per thread: concurrent trainer / server / TA code each get their own
  // arena, so the shims stay safe without locking. Construction is cheap
  // (no blocks until first alloc).
  thread_local ExecutionContext ctx;
  return ctx;
}

}  // namespace tbnet
