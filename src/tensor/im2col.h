#pragma once
// im2col / col2im lowering for 2-D convolution.
//
// Convolution forward is computed as  W[outC, inC*kh*kw] x cols[inC*kh*kw, oh*ow]
// per image; backward-to-input uses col2im to scatter the column gradient back.

#include <cstdint>

#include "tensor/execution_context.h"

namespace tbnet {

/// Parameters of a 2-D convolution / pooling window over a CHW image.
struct Conv2dGeom {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t kernel_h = 1, kernel_w = 1;
  int64_t stride_h = 1, stride_w = 1;
  int64_t pad_h = 0, pad_w = 0;

  int64_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  int64_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  /// Rows of the column matrix: in_c * kernel_h * kernel_w.
  int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  /// Columns of the column matrix: out_h * out_w.
  int64_t col_cols() const { return out_h() * out_w(); }
};

/// Expands `image` (CHW, geom.in_c x geom.in_h x geom.in_w) into `cols`
/// ([col_rows x col_cols], caller-allocated). Out-of-bounds taps read 0.
/// The context form shards the (independent) column-matrix rows on
/// ctx.pool(); output is identical to the serial form.
void im2col(const ExecutionContext& ctx, const Conv2dGeom& geom,
            const float* image, float* cols);
void im2col(const Conv2dGeom& geom, const float* image, float* cols);

/// Adjoint of im2col: accumulates `cols` back into `image` (caller must
/// zero-init `image`).
void col2im(const Conv2dGeom& geom, const float* cols, float* image);

/// Fused im2col → panel lowering: writes the [kc x nr] slab of the column
/// matrix covering rows [kk, kk+kc) and columns [j0, j0+nr) straight from
/// the CHW `image` into `panel` (layout [kc][panel_stride], columns
/// [nr, panel_stride) zero-filled). Feeding these panels to the packed GEMM
/// driver (packdetail::run_packed_b_producer) computes a convolution without
/// ever materializing the column matrix; the values written are exactly the
/// ones im2col would place at the same (row, col) positions, so the result
/// is bit-identical to the materializing path. Pure function of its
/// arguments — safe to call concurrently for disjoint panels. `nr` must not
/// exceed simd::kNR (one microkernel panel, the only width the packed driver
/// requests); panel_stride >= nr sets the row pitch.
void im2col_pack_panel(const Conv2dGeom& geom, const float* image, int64_t kk,
                       int64_t kc, int64_t j0, int nr, int64_t panel_stride,
                       float* panel);

/// Quantize-on-pack variant for the int8 path: the same [kc x nr] column
/// slab, but quantized to u7 (simd::quantize_u7 with inv_scale/zero_point)
/// and written in the grouped int8 B-panel layout packdetail::PanelProducerU8
/// documents. The f32 intermediate lives only in a kKG x kNR stack staging
/// tile, so the zero-materialization property of the fused lowering carries
/// over to the quantized path. Taps past kc and columns past nr are written
/// as 0 (the packed weights are zero there, so they contribute nothing).
/// Pure function of its arguments, like im2col_pack_panel.
void im2col_pack_panel_u8(const Conv2dGeom& geom, const float* image,
                          int64_t kk, int64_t kc, int64_t j0, int nr,
                          float inv_scale, int32_t zero_point, uint8_t* panel);

}  // namespace tbnet
