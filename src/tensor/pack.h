#pragma once
// pack.h — panel packing and the packed GEMM driver.
//
// The microkernel (simd.h) wants both operands as contiguous panels:
//   A panels: kMR C-rows wide, laid out [kc][kMR] per k-block;
//   B panels: kNR C-columns wide, laid out [kc][kNR] per k-block.
// This header provides the pack routines, the blocked driver that walks
// panels through the microkernel, and PackedGemm — a per-layer cache of
// packed weight panels so deployed models never repack on the hot path.
//
// Layout of a packed operand (shared by pack_* and run_packed): k is split
// into kBlockK slices; slice kb starts at float offset round_up(m,kMR) * kk
// (A side) or round_up(n,kNR) * kk (B side), and stores its panels
// back-to-back. Edge panels are zero-padded to full width, so the microkernel
// never branches on the k loop.

#include <cstdint>
#include <functional>
#include <memory>

#include "tensor/execution_context.h"
#include "tensor/simd.h"

namespace tbnet {

class ThreadPool;

/// Optional fused per-row / per-column epilogue for a GEMM call, applied to
/// each C element after the alpha/beta update (see simd::TileEpilogue for the
/// exact formula). Row arrays have length m, column arrays length n.
struct GemmEpilogue {
  const float* row_scale = nullptr;
  const float* row_shift = nullptr;
  const float* col_scale = nullptr;
  const float* col_shift = nullptr;
  simd::Act act = simd::Act::kNone;

  bool empty() const {
    return row_scale == nullptr && row_shift == nullptr &&
           col_scale == nullptr && col_shift == nullptr &&
           act == simd::Act::kNone;
  }
};

namespace packdetail {

/// Floats needed to pack an A operand [m, k] / a B operand [k, n].
int64_t packed_a_floats(int64_t m, int64_t k);
int64_t packed_b_floats(int64_t k, int64_t n);

/// Packs row-major A [m, k] (row stride lda) into A panels at `dst`.
/// The pool form shards over row panels (disjoint writes, pure data
/// movement, so the packed bytes are identical to the serial form).
void pack_a_rowmajor(int64_t m, int64_t k, const float* a, int64_t lda,
                     float* dst);
void pack_a_rowmajor(ThreadPool& pool, int64_t m, int64_t k, const float* a,
                     int64_t lda, float* dst, int max_width = 0);

/// Packs A panels from A^T: `at` is [k, m] row-major (row stride ldat), the
/// layout gemm_tn receives (logical A row i is at's column i). Produces the
/// same panel bytes pack_a_rowmajor would for the un-transposed matrix.
void pack_a_from_at(int64_t m, int64_t k, const float* at, int64_t ldat,
                    float* dst);
void pack_a_from_at(ThreadPool& pool, int64_t m, int64_t k, const float* at,
                    int64_t ldat, float* dst, int max_width = 0);

/// Packs B panels from B^T: `bt` is [n, k] row-major (row stride ldbt), the
/// natural layout of a Dense weight used as the right operand. (Row-major B
/// never packs — run_packed_b_rowmajor consumes it in place.) The pool form
/// shards over column panels.
void pack_b_from_bt(int64_t n, int64_t k, const float* bt, int64_t ldbt,
                    float* dst);
void pack_b_from_bt(ThreadPool& pool, int64_t n, int64_t k, const float* bt,
                    int64_t ldbt, float* dst, int max_width = 0);

/// C[m, n] (row stride ldc) = ep(alpha * A * B + beta * C) from packed
/// operands. Parallelizes over column panels on `pool`, splitting at most
/// `max_width` ways (<= 0 = pool width; see ThreadPool::parallel_for) —
/// per-element bits are independent of the pool size, the width cap, and
/// the m/n partitioning (see simd.h).
void run_packed(ThreadPool& pool, int64_t m, int64_t n, int64_t k, float alpha,
                const float* apack, const float* bpack, float beta, float* c,
                int64_t ldc, const GemmEpilogue& ep, int max_width = 0);

/// Same contract, but the right operand is a row-major B [k, n] (row stride
/// ldb) read IN PLACE: a full column panel of row-major B is already kNR
/// contiguous floats per row, so only the ragged final panel (n % kNR != 0)
/// is packed — into a small per-task scratch — and the im2col/colbuf B of
/// the conv hot path never gets copied at all. Bit-identical to packing B
/// first (same loads, same FMA order).
void run_packed_b_rowmajor(ThreadPool& pool, int64_t m, int64_t n, int64_t k,
                           float alpha, const float* apack, const float* b,
                           int64_t ldb, float beta, float* c, int64_t ldc,
                           const GemmEpilogue& ep, int max_width = 0);

/// Writes one B panel on demand: the [kc x nr] slab covering logical B rows
/// [kk, kk+kc) and columns [j0, j0+nr), laid out [kc][kNR] at `panel` with
/// columns [nr, kNR) zero-filled. This is how the hot paths feed the driver
/// without ever materializing the right operand: the conv producer reads
/// straight from the padded CHW image (im2col_pack_panel), and the fused
/// depthwise→pointwise producer (nn/fuse.h) computes depthwise output rows
/// into the panel with the SIMD row kernel (simd::dw_row_kernel).
using PanelProducer = std::function<void(int64_t kk, int64_t kc, int64_t j0,
                                         int nr, float* panel)>;

/// Same contract as run_packed_b_rowmajor, but the right operand is
/// *produced* panel by panel instead of read from memory: `produce` is
/// invoked once per (column panel, k-block) and must fill the scratch panel
/// with exactly the bytes a packed B would hold there. Sharded over column
/// panels on ctx's pool with one [kBlockK x kNR] scratch slab per
/// parallel_for chunk, allocated up front from ctx's arena (and rewound on
/// return). Because the microkernel sees the same panel values in the same
/// k order, results are bit-identical to materializing the B matrix and
/// calling run_packed_b_rowmajor — and independent of the pool size.
/// `produce` runs on worker threads: it must be thread-safe for disjoint
/// panels and must not touch the arena or call parallel_for.
void run_packed_b_producer(const ExecutionContext& ctx, int64_t m, int64_t n,
                           int64_t k, float alpha, const float* apack,
                           const PanelProducer& produce, float beta, float* c,
                           int64_t ldc, const GemmEpilogue& ep);

/// Arena floats run_packed_b_producer allocates for its per-chunk B slabs
/// for an n-column GEMM on `pool` — one slab per parallel_for chunk, double
/// width when the AVX-512 pair tile is active. `max_width` must match the
/// ctx's intra-op width (0 = uncapped) so the chunk count matches the
/// driver's split. Exposed so tests can assert producer arena usage against
/// the real accounting instead of pinning a pool size.
int64_t producer_slab_floats(ThreadPool& pool, int64_t n, int max_width = 0);

// ------------------------------------------------------------------ int8 --
//
// Quantized panel formats (simd.h): k is grouped by simd::kKG = 4 with NO
// kBlockK slicing — the u7 x s8 products keep the full-depth i32 dot product
// exact, so accumulators stay in registers across all of k and the epilogue
// runs exactly once per tile.

/// Bytes needed to pack an s8 A operand [m, k] as int8 panels:
/// ceil(m/kMR) panels of ceil(k/kKG) groups x kMR x kKG bytes.
int64_t packed_a_i8_bytes(int64_t m, int64_t k);

/// Bytes of ONE u8 B panel covering the full depth k (the producer slab
/// granule): ceil(k/kKG) groups x kNR x kKG bytes.
int64_t panel_b_i8_bytes(int64_t k);

/// Packs row-major s8 A [m, k] (row stride lda) into int8 A panels at `dst`.
/// Rows past m and taps past k are zero (contribute exactly 0 to any tile).
void pack_a_i8(int64_t m, int64_t k, const int8_t* a, int64_t lda,
               int8_t* dst);

/// Writes one u8 B panel on demand: the [kc x nr] activation slab covering
/// B rows [kk, kk+kc) and columns [j0, j0+nr), QUANTIZED to u7 and laid out
/// in the grouped int8 format at `panel` (group g holds taps kk+4g..kk+4g+3;
/// element (p, j) at byte (p/4)*kNR*kKG + j*kKG + p%4). Columns [nr, kNR)
/// and taps past kc must be zero-filled. The int8 driver always passes
/// kk == 0, kc == k (no k slicing); the signature keeps the f32 producer's
/// shape so the same lowering code can build either. Same thread-safety
/// contract as PanelProducer.
using PanelProducerU8 = std::function<void(int64_t kk, int64_t kc, int64_t j0,
                                           int nr, uint8_t* panel)>;

/// C[m, n] = ep(A_q * B_q) from a packed s8 A and produced u8 B panels.
/// C is written, never accumulated into (the int8 path has no beta); the
/// QuantEpilogue (never-null scale/shift of length m, pre-composed by the
/// caller) is applied to every tile. Sharded over column panels with one
/// full-depth u8 slab per parallel_for chunk from ctx's arena (rewound on
/// return). Bits are identical across ISAs, pool sizes, and
/// TBNET_DETERMINISTIC (see simd.h).
void run_packed_i8_producer(const ExecutionContext& ctx, int64_t m, int64_t n,
                            int64_t k, const int8_t* apack,
                            const PanelProducerU8& produce, float* c,
                            int64_t ldc, const simd::QuantEpilogue& ep);

}  // namespace packdetail

/// Cached packed panels of one GEMM operand — in practice a layer's weight,
/// packed once at deploy time (Layer::prepare_inference) so the serving hot
/// path skips per-call packing of the stationary side.
///
/// Storage comes from the caller's long-lived ExecutionContext arena when one
/// is supplied (allocations made before any ArenaScope mark survive every
/// rewind), else from an internally owned 64-byte-aligned buffer. Copying a
/// PackedGemm yields an EMPTY cache: packs are host/layout-specific and a
/// cloned layer must re-prepare — this is what makes Layer::clone() safe by
/// construction.
class PackedGemm {
 public:
  enum class Side { kNone, kA, kB };

  PackedGemm() = default;
  PackedGemm(const PackedGemm&) {}
  PackedGemm& operator=(const PackedGemm&) {
    clear();
    return *this;
  }

  /// Packs `a` [m, k] row-major as the left operand (conv weights).
  void pack_a(int64_t m, int64_t k, const float* a,
              WorkspaceArena* arena = nullptr);

  /// Packs `bt` [n, k] row-major (= B^T) as the right operand (dense
  /// weights: C = X * W^T with W stored [out, in]).
  void pack_b_transposed(int64_t n, int64_t k, const float* bt,
                         WorkspaceArena* arena = nullptr);

  bool empty() const { return data_ == nullptr; }
  void clear();

  Side side() const { return side_; }
  int64_t depth() const { return k_; }  ///< shared k extent
  int64_t rows() const { return m_; }   ///< C rows when side == kA
  int64_t cols() const { return n_; }   ///< C cols when side == kB

  /// side kA: C[rows(), n] = ep(alpha * A * b + beta * C); `b` is [k, n]
  /// row-major and is consumed IN PLACE by the microkernel (only ragged edge
  /// panels copy to per-task stack scratch) — `b` must stay valid for the
  /// whole call and its full-width rows in bounds, and ctx's arena is not
  /// touched.
  void run(const ExecutionContext& ctx, int64_t n, float alpha, const float* b,
           float beta, float* c, const GemmEpilogue& ep = {}) const;

  /// side kB: C[m, cols()] = ep(alpha * a * B + beta * C); `a` is [m, k]
  /// row-major and is packed per call into ctx's arena.
  void run_with_a(const ExecutionContext& ctx, int64_t m, float alpha,
                  const float* a, float beta, float* c,
                  const GemmEpilogue& ep = {}) const;

  /// Raw packed panels (run_packed layout); for callers that drive the
  /// packed driver themselves (Conv2d loops images around one packed weight).
  const float* data() const { return data_; }

 private:
  float* reserve(int64_t floats, WorkspaceArena* arena);

  struct AlignedDeleter {
    void operator()(float* p) const;
  };

  const float* data_ = nullptr;  ///< valid packed panels (null when empty)
  float* store_ = nullptr;       ///< backing storage, reused across re-packs
  WorkspaceArena* arena_ = nullptr;  ///< arena store_ came from (null = owned)
  int64_t capacity_ = 0;         ///< floats store_ can hold
  std::unique_ptr<float[], AlignedDeleter> owned_;
  Side side_ = Side::kNone;
  int64_t m_ = 0, n_ = 0, k_ = 0;
};

}  // namespace tbnet
