#include "tensor/ops.h"

#include <cmath>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace tbnet {
namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape().str() + " vs " + b.shape().str());
  }
}

void check_2d(const Tensor& t, const char* op) {
  if (t.shape().ndim() != 2) {
    throw std::invalid_argument(std::string(op) + ": expected rank-2 tensor, got " +
                                t.shape().str());
  }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  out.axpy_(-1.0f, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  for (int64_t i = 0; i < out.numel(); ++i) out[i] *= b[i];
  return out;
}

namespace {

template <typename BinOp>
void elementwise_into(const ExecutionContext& ctx, const Tensor& a,
                      const Tensor& b, Tensor& out, const char* name,
                      BinOp op) {
  check_same_shape(a, b, name);
  if (out.shape() != a.shape()) out = Tensor(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ctx.parallel_for(a.numel(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = op(pa[i], pb[i]);
  });
}

}  // namespace

void add(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  elementwise_into(ctx, a, b, out, "add",
                   [](float x, float y) { return x + y; });
}

void sub(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  elementwise_into(ctx, a, b, out, "sub",
                   [](float x, float y) { return x - y; });
}

void mul(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out) {
  elementwise_into(ctx, a, b, out, "mul",
                   [](float x, float y) { return x * y; });
}

Tensor softmax2d(const Tensor& logits) {
  check_2d(logits, "softmax2d");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float m = row[0];
    for (int64_t j = 1; j < c; ++j) m = std::max(m, row[j]);
    double z = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - m);
      z += orow[j];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor log_softmax2d(const Tensor& logits) {
  check_2d(logits, "log_softmax2d");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float m = row[0];
    for (int64_t j = 1; j < c; ++j) m = std::max(m, row[j]);
    double z = 0.0;
    for (int64_t j = 0; j < c; ++j) z += std::exp(row[j] - m);
    const float logz = m + static_cast<float>(std::log(z));
    for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - logz;
  }
  return out;
}

std::vector<int64_t> argmax_rows(const Tensor& logits) {
  check_2d(logits, "argmax_rows");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    idx[static_cast<size_t>(i)] = best;
  }
  return idx;
}

double accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  const auto pred = argmax_rows(logits);
  if (pred.size() != labels.size()) {
    throw std::invalid_argument("accuracy: label count mismatch");
  }
  if (pred.empty()) return 0.0;
  int64_t hits = 0;
  for (size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == labels[i]);
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int64_t>& labels, Tensor* grad) {
  check_2d(logits, "softmax_cross_entropy");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  const Tensor logp = log_softmax2d(logits);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    loss -= logp[i * c + y];
  }
  loss /= static_cast<double>(n);
  if (grad != nullptr) {
    *grad = Tensor(logits.shape());
    const float invn = 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t y = labels[static_cast<size_t>(i)];
      float* grow = grad->data() + i * c;
      const float* lrow = logp.data() + i * c;
      for (int64_t j = 0; j < c; ++j) {
        grow[j] = (std::exp(lrow[j]) - (j == y ? 1.0f : 0.0f)) * invn;
      }
    }
  }
  return loss;
}

}  // namespace tbnet
