#pragma once
// simd.h — the CPU microkernel layer under the packed GEMM.
//
// One 6x16 register-tiled microkernel, three implementations:
//   * AVX2+FMA  — compiled with a function target attribute so the library
//     still builds with baseline -O2 flags; selected at runtime only when
//     __builtin_cpu_supports confirms the host has both extensions.
//   * NEON      — aarch64 builds (NEON is architecturally guaranteed there).
//   * scalar    — portable fallback, also the shape every other kernel's
//     numerics are documented against.
//
// The tile is MR=6 rows x NR=16 columns: on AVX2 that is 12 ymm accumulators
// plus two B vectors and one A broadcast, which exactly fits the 16-register
// file with no spills. Panels are packed (pack.h) so the p-loop reads both
// operands contiguously.
//
// Determinism contract: for a given element C[i,j] the accumulation is a
// single FMA chain in k order, independent of how the driver partitions rows,
// columns, or threads. Edge tiles (mr < MR, nr < NR) run the same vector
// accumulation over zero-padded panels and finalize scalar-side with
// std::fmaf, which rounds identically to the vector FMA — so a row's bits do
// not depend on the batch size that surrounded it (the serving tests assert
// batched == per-image bit-for-bit).
//
// TBNET_DETERMINISTIC=1 disables this layer entirely: gemm falls back to the
// PR-1 scalar blocked kernels and the nn layers skip epilogue fusion, giving
// bit-reproducibility with older runs.

#include <cmath>
#include <cstdint>

namespace tbnet::simd {

/// Microkernel tile: MR rows of C by NR columns.
inline constexpr int kMR = 6;
inline constexpr int kNR = 16;

/// Alignment (bytes) of packed panels and arena scratch: one cache line,
/// enough for any current vector ISA.
inline constexpr int64_t kAlign = 64;

enum class Isa { kScalar, kAvx2, kNeon, kAvx512 };

/// The instruction set the runtime dispatch selected (decided once).
Isa active_isa();
const char* isa_name();

/// The int8 kernel tier selected for this host ("avx512-vnni", "avx-vnni",
/// "avx2-maddubs", or "scalar") — reported independently of isa_name()
/// because the f32 and int8 ladders probe different CPU features.
const char* int8_isa_name();

/// False when TBNET_DETERMINISTIC=1: callers must use the scalar reference
/// kernels and keep bias/BN/activation as separate passes. Latched on first
/// use.
bool fast_kernels_enabled();

/// Fused activation applied as the last step of a GEMM epilogue.
enum class Act : uint8_t { kNone = 0, kReLU = 1, kReLU6 = 2 };

/// True for the Act values the kernels implement. Epilogue builders validate
/// with this BEFORE entering a hot loop: the per-element application below is
/// an explicit dispatch, so an unknown value (a future enum member reaching
/// an old kernel) must be rejected at the boundary rather than silently
/// clamped as ReLU.
constexpr bool act_known(Act act) {
  return act == Act::kNone || act == Act::kReLU || act == Act::kReLU6;
}

/// Throws std::invalid_argument for values act_known rejects.
void require_known_act(Act act);

/// Scalar activation application shared by the GEMM epilogue finalizers and
/// the depthwise kernels — the single place the Act semantics live. Explicit
/// per-value dispatch; callers guarantee act_known(act) (require_known_act at
/// the call boundary).
inline float apply_act(float v, Act act) {
  switch (act) {
    case Act::kNone:
      return v;
    case Act::kReLU:
      return v > 0.0f ? v : 0.0f;
    case Act::kReLU6:
      v = v > 0.0f ? v : 0.0f;
      return v > 6.0f ? 6.0f : v;
  }
  return v;  // unreachable when the boundary validated act_known
}

/// Per-tile epilogue view. Pointers are pre-offset to the tile origin by the
/// driver; nullptr means identity (scale 1 / shift 0). Applied as
///   v = v * row_scale[i] + row_shift[i]
///   v = v * col_scale[j] + col_shift[j]
///   v = act(v)
/// after the alpha/beta update. Row epilogues serve conv (C rows = output
/// channels); column epilogues serve dense (C columns = output features).
struct TileEpilogue {
  const float* row_scale = nullptr;
  const float* row_shift = nullptr;
  const float* col_scale = nullptr;
  const float* col_shift = nullptr;
  Act act = Act::kNone;
};

/// Computes one C tile from an A panel and a B slab:
///   C[i,j] = ep(alpha * sum_p A[p][i] * B[p][j] + beta * C[i,j])
/// A panel layout: [kc][kMR] (column i = C row), zero-padded to full width.
/// The B operand is kNR consecutive floats per k row with row stride
/// `bstride` — either a packed zero-padded panel (bstride == kNR) or, for
/// full tiles, a row-major B matrix read in place (bstride == ldb), which is
/// what lets gemm_nn and the conv hot path skip packing the im2col buffer
/// entirely. Full-width reads must be in bounds for all kc rows. `beta == 0`
/// must not read C. `ep` may be nullptr (no epilogue; used for all but the
/// last k-block).
using MicroKernelFn = void (*)(int64_t kc, const float* a_panel,
                               const float* b_panel, int64_t bstride, float* c,
                               int64_t ldc, int mr, int nr, float alpha,
                               float beta, const TileEpilogue* ep);

/// The dispatched microkernel for this host.
MicroKernelFn micro_kernel();

/// Specialization for single-row tiles (mr == 1): computes only C row 0 with
/// the identical per-lane FMA chain, so its bits match the general kernel's
/// row 0 exactly while skipping the 5 padded rows' work. Drivers use it for
/// m == 1 GEMMs (single-image dense heads). Falls back to the general kernel
/// on ISAs without a dedicated variant.
MicroKernelFn micro_kernel_mr1();

/// Double-width f32 tile (kMR x 2*kNR) for AVX-512 hosts: consumes TWO
/// adjacent 16-column B panels per call (b0/b1 with independent row strides,
/// covering C columns [j, j+16) and [j+16, j+32)) and keeps 12 zmm
/// accumulators live, doubling FMA width per k iteration. Each C element's
/// accumulation is the same single FMA chain in k order as micro_kernel(),
/// and the epilogue applies the same per-element operations, so the bits are
/// identical to two 16-wide calls — drivers switch tile width freely without
/// changing results. Both panels must be full width (nr == kNR each; `ep`
/// column arrays, when set, must cover 32 columns from the tile origin).
/// Returns nullptr unless the host has AVX-512F and fast kernels are on.
using MicroKernelWideFn = void (*)(int64_t kc, const float* a_panel,
                                   const float* b0, int64_t bstride0,
                                   const float* b1, int64_t bstride1, float* c,
                                   int64_t ldc, int mr, float alpha, float beta,
                                   const TileEpilogue* ep);
MicroKernelWideFn micro_kernel_wide();

// ---------------------------------------------------------------- int8 ----
//
// Quantized GEMM microkernels: s8 weights x u8 activations with i32
// accumulation and a fused dequantize+affine+activation epilogue. Operands
// are packed in groups of kKG = 4 consecutive k values so one 32-bit lane
// holds a dot-product quad (the shape vpdpbusd / pmaddubsw consume):
//   A panel: [ceil(kc/4)][kMR][4] int8  — 4 k-taps per C row per group;
//   B panel: [ceil(kc/4)][kNR][4] uint8 — 4 k-taps per C column per group.
// Zero padding (rows past m, k past the real depth) contributes exactly 0.
//
// Exactness contract: activations quantize to [0, 127] (u7) and weights to
// [-127, 127], so a pmaddubsw pair sum is at most 2*127*127 = 32258 < 2^15 —
// the i16 intermediate never saturates and every tier's i32 accumulator
// holds the exact integer dot product. The epilogue computes
//   C[i][j] = act(fmaf((float)acc, scale[i], shift[i]))
// per element; (float)acc and _mm256_cvtepi32_ps round identically
// (nearest-even), as do fmaf and vfmadd, so the scalar reference, the AVX2
// maddubs tier, and both VNNI tiers produce bit-identical C — the int8 path
// is deterministic across ISAs, thread counts, and TBNET_DETERMINISTIC.

/// k-group width of the int8 panel formats.
inline constexpr int kKG = 4;

/// Per-row dequantization epilogue for the int8 kernels. `scale`/`shift`
/// are pre-offset to the tile's first row and never null (the driver always
/// composes weight scale x activation scale x any folded BN/bias affine).
struct QuantEpilogue {
  const float* scale = nullptr;
  const float* shift = nullptr;
  Act act = Act::kNone;
};

/// Computes one C tile from int8 panels: kg k-groups (kg = ceil(kc / kKG)),
/// then the QuantEpilogue; C is written (never read). `b_panel` stride is
/// implied by the packed layout (kNR * kKG bytes per group).
using MicroKernelI8Fn = void (*)(int64_t kg, const int8_t* a_panel,
                                 const uint8_t* b_panel, float* c, int64_t ldc,
                                 int mr, int nr, const QuantEpilogue& ep);

/// The canonical activation quantizer: u7 affine with round-to-nearest-even
/// (lrintf compiles to cvtss2si under the default rounding mode). EVERY
/// producer that quantizes activations into B panels must use this exact
/// expression — the int8 path's bit-determinism rests on all sites rounding
/// identically. Spatial conv padding quantizes 0.0f to zero_point, which the
/// driver's zp-correction term cancels exactly.
inline uint8_t quantize_u7(float x, float inv_scale, int32_t zero_point) {
  int32_t q = static_cast<int32_t>(lrintf(x * inv_scale)) + zero_point;
  q = q < 0 ? 0 : q;
  return static_cast<uint8_t>(q > 127 ? 127 : q);
}

/// Bulk form of quantize_u7 for one full B panel k-group: writes the 64-byte
/// grouped block grp[j * kKG + t] = quantize_u7(row_t[j], ...) for j in
/// [0, kNR), t in [0, kKG). Each row pointer must cover kNR readable floats.
/// Every tier (scalar / AVX2 / AVX-512) rounds exactly like quantize_u7 for
/// inputs whose scaled value stays inside i32 (guaranteed by calibrated
/// scales), so panel bytes do not depend on the tier; the accessor still
/// pins the scalar form under TBNET_DETERMINISTIC=1. Producers use this for
/// full groups and fall back to per-element quantize_u7 at k / column tails.
using QuantizeU7GroupFn = void (*)(const float* r0, const float* r1,
                                   const float* r2, const float* r3,
                                   uint8_t* grp, float inv_scale,
                                   int32_t zero_point);
QuantizeU7GroupFn quantize_u7_group();

/// The dispatched int8 microkernel for this host (VNNI > maddubs > scalar).
MicroKernelI8Fn micro_kernel_i8();

/// The scalar int8 reference kernel — what TBNET_DETERMINISTIC=1 pins, and
/// the parity oracle the SIMD tiers are tested against (bits must match).
MicroKernelI8Fn micro_kernel_i8_reference();

/// SIMD dot product (FMA chains; lane order fixed per ISA). Backs gemv.
float dot(const float* a, const float* b, int64_t n);

// ----------------------------------------------------------- depthwise ----
//
// The depthwise engine mirrors the GEMM design: one row microkernel, three
// implementations (AVX2 via target attribute + runtime dispatch, NEON,
// scalar), selected once per process. The kernel computes a segment of one
// output row of a per-channel k x k convolution with the channel's
// scale/shift + activation fused into the store:
//
//   out[t] = act(acc(t) * scale + shift)
//   acc(t) = sum_{ky < kh, kx < kw} rows[ky][(ox0 + t) * stride_w - pad_w + kx]
//            * taps[ky * kw + kx]
//
// Interior/border split: the kernel computes once per call the output range
// whose taps are all horizontally in bounds and runs it vectorized with no
// per-pixel checks; only the (at most kernel-width) edge pixels take the
// bounds-checked path. Vertical padding is the caller's job — rows[ky] ==
// nullptr marks an out-of-bounds tap row and contributes exactly zero.
//
// Determinism contract (the dw→pw producer leans on this): each output
// pixel's accumulation is an independent chain in (ky, kx) tap order. On FMA
// ISAs the border pixels finalize with std::fmaf, which rounds identically
// to the vector FMA lanes, so a pixel's bits depend neither on which side of
// the interior split covered it nor on how [ox0, ox0 + n) was segmented —
// computing a row whole or 16 columns at a time gives the same bytes. The
// scalar ISA uses plain multiply-add throughout (also segment-invariant).
// Passing scale = 1 / shift = 0 for an affine-free layer is exact (x * 1 + 0
// round-trips bitwise through fmaf).
//
// TBNET_DETERMINISTIC=1 bypasses this layer: DepthwiseConv2d routes to its
// scalar per-pixel reference kernel (bit-stable across releases).

/// Depthwise row microkernel: writes out[0, n) covering output columns
/// [ox0, ox0 + n) of one row. `rows` holds kh input-row base pointers
/// (plane + iy * iw, nullptr when iy is out of bounds); `taps` is the
/// channel's kh x kw filter; `iw` bounds the horizontal reads. See the
/// contract above.
using DwRowKernelFn = void (*)(const float* const* rows, int64_t kh,
                               const float* taps, int64_t kw, int64_t iw,
                               int64_t pad_w, int64_t stride_w, int64_t ox0,
                               int64_t n, float scale, float shift, Act act,
                               float* out);

/// The dispatched depthwise row kernel for this host (decided once, same
/// dispatch as micro_kernel).
DwRowKernelFn dw_row_kernel();

}  // namespace tbnet::simd
