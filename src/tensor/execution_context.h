#pragma once
// ExecutionContext — per-thread execution state for the forward/backward path.
//
// The hot inference path used to allocate fresh std::vector scratch (im2col
// column buffers, gradient columns, ...) on every layer call, so serving
// throughput was dominated by malloc + page-zeroing rather than arithmetic.
// An ExecutionContext bundles:
//   * a WorkspaceArena — a growable bump allocator whose blocks are retained
//     across calls, so steady-state inference performs no heap allocation
//     for scratch;
//   * a ThreadPool handle — which pool the kernels (gemm, im2col) shard on;
//   * a tee::World tag — labels whether this context executes normal-world
//     (REE) or secure-world (TEE) code. The runtime sets it (engine contexts
//     are kNormal, TA-owned contexts kSecure); it is a diagnostic label, not
//     an enforcement mechanism.
//
// Contexts are NOT thread-safe: one context per executing thread. Legacy
// call sites that do not thread a context explicitly get the calling
// thread's default context (default_execution_context()), which preserves
// the old API while still reusing scratch across calls.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "tee/world.h"

namespace tbnet {

class ThreadPool;

/// Growable bump allocator for float scratch. Blocks are never freed by
/// rewinding, so after a warm-up call the same workload allocates no new
/// memory ("no growth after warmup" is test-enforced). Not thread-safe.
class WorkspaceArena {
 public:
  WorkspaceArena() = default;
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Position checkpoint; see mark()/rewind().
  struct Mark {
    size_t block = 0;
    int64_t used = 0;
  };

  /// Returns `n` floats of uninitialized scratch, valid until the enclosing
  /// rewind()/reset(). Always 64-byte aligned (simd::kAlign): block storage
  /// is over-aligned and the bump position rounds up to a cache line, so
  /// packed GEMM panels can use aligned vector loads.
  float* alloc(int64_t n);

  std::span<float> alloc_span(int64_t n) {
    return std::span<float>(alloc(n), static_cast<size_t>(n));
  }

  /// Snapshot of the current bump position.
  Mark mark() const;

  /// Returns the arena to a previous mark(); everything allocated after the
  /// mark becomes invalid. Blocks are retained for reuse.
  void rewind(const Mark& m);

  /// Rewinds to empty (blocks retained).
  void reset();

  /// Total floats of backing storage across all blocks.
  int64_t capacity_floats() const;
  int64_t capacity_bytes() const {
    return capacity_floats() * static_cast<int64_t>(sizeof(float));
  }
  size_t block_count() const { return blocks_.size(); }

 private:
  /// Frees storage obtained with the align_val_t form of operator new[].
  struct AlignedDeleter {
    void operator()(float* p) const;
  };

  struct Block {
    std::unique_ptr<float[], AlignedDeleter> data;
    int64_t size = 0;
    int64_t used = 0;
  };

  // blocks_[active_] is the bump frontier; earlier blocks are frozen (their
  // `used` stands), later blocks are empty spares awaiting reuse.
  std::vector<Block> blocks_;
  size_t active_ = 0;
};

/// RAII arena checkpoint: rewinds on scope exit so sibling layer calls reuse
/// the same scratch bytes. Every layer forward/backward opens one.
class ArenaScope {
 public:
  explicit ArenaScope(WorkspaceArena& arena)
      : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  WorkspaceArena& arena_;
  WorkspaceArena::Mark mark_;
};

/// Execution state threaded through tensor kernels, nn layers, the
/// two-branch forward and the deployed runtime. One per thread.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  explicit ExecutionContext(tee::World world, ThreadPool* pool = nullptr)
      : world_(world), pool_(pool) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// The workspace is usable through a const context: kernels take
  /// `const ExecutionContext&` (they do not change pool/world) but still bump
  /// scratch, so the arena member is mutable.
  WorkspaceArena& arena() const { return arena_; }

  /// The pool kernels shard on; falls back to ThreadPool::global().
  ThreadPool& pool() const;
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Intra-op width hint (PR 10): caps how many chunks THIS context's
  /// parallel_for()/chunk_size() split a range into (<= 0 = uncapped, the
  /// pool's full width). N dispatch workers each running an engine at full
  /// pool width submit N x num_threads chunks onto num_threads cores; an
  /// elastic server sets each engine context's width to ~num_threads / N so
  /// inter-op and intra-op parallelism compose instead of oversubscribing.
  /// Purely a scheduling hint — results stay bit-identical across widths.
  int intra_op_width() const { return intra_op_width_; }
  void set_intra_op_width(int width) {
    intra_op_width_ = width > 0 ? width : 0;
  }

  /// Width-capped shard on this context's pool. Kernels that take a context
  /// must use these (not ctx.pool().parallel_for directly) so the hint
  /// actually reaches the split; both forward the same width, keeping the
  /// chunk boundaries and any begin/chunk-keyed scratch in sync.
  void parallel_for(int64_t n,
                    const std::function<void(int64_t, int64_t)>& fn) const;
  int64_t chunk_size(int64_t n) const;

  tee::World world() const { return world_; }
  void set_world(tee::World world) { world_ = world; }

 private:
  mutable WorkspaceArena arena_;
  tee::World world_ = tee::World::kNormal;
  ThreadPool* pool_ = nullptr;  // nullptr = ThreadPool::global()
  int intra_op_width_ = 0;      // <= 0 = uncapped
};

/// The calling thread's fallback context (normal world, global pool). Used
/// by the no-context compatibility shims; lives until thread exit.
ExecutionContext& default_execution_context();

}  // namespace tbnet
