#pragma once
// Shape: dimension vector for dense row-major tensors.
//
// A Shape is an ordered list of extents, e.g. {N, C, H, W} for an activation
// batch. It is a small value type; all tensor code in tbnet passes it by
// const reference or value.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tbnet {

/// Dimension vector of a dense row-major tensor.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  /// Number of dimensions (rank).
  int ndim() const { return static_cast<int>(dims_.size()); }

  /// Extent of dimension `i`; negative `i` counts from the back.
  int64_t dim(int i) const;

  /// Total number of elements (product of extents; 1 for rank-0).
  int64_t numel() const;

  /// Row-major strides, in elements.
  std::vector<int64_t> strides() const;

  const std::vector<int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human readable form, e.g. "[2, 3, 32, 32]".
  std::string str() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace tbnet
