#include "tensor/shape.h"

#include <sstream>
#include <stdexcept>

namespace tbnet {

int64_t Shape::dim(int i) const {
  const int n = ndim();
  if (i < 0) i += n;
  if (i < 0 || i >= n) {
    throw std::out_of_range("Shape::dim index " + std::to_string(i) +
                            " out of range for rank " + std::to_string(n));
  }
  return dims_[static_cast<size_t>(i)];
}

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

std::string Shape::str() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace tbnet
