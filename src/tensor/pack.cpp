#include "tensor/pack.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace tbnet {
namespace packdetail {
namespace {

using simd::kKG;
using simd::kMR;
using simd::kNR;

// k-slice depth. The A panel slice (kMR * kBlockK floats = 15 KiB) stays
// L1-resident while a tile accumulates; 640 covers every CIFAR-scale im2col
// depth (<= 576) in one slice, so C tiles accumulate entirely in registers
// for the serving shapes.
constexpr int64_t kBlockK = 640;

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

int64_t packed_a_floats(int64_t m, int64_t k) {
  return ceil_div(m, kMR) * kMR * std::max<int64_t>(k, 1);
}

int64_t packed_b_floats(int64_t k, int64_t n) {
  return ceil_div(n, kNR) * kNR * std::max<int64_t>(k, 1);
}

/// Packs the A panel at row offset i0 across every k block.
void pack_a_panel(int64_t m, int64_t k, const float* a, int64_t lda,
                  int64_t m_round, int64_t i0, float* dst) {
  for (int64_t kk = 0; kk < k; kk += kBlockK) {
    const int64_t kc = std::min(kBlockK, k - kk);
    float* panel = dst + m_round * kk + i0 * kc;
    for (int64_t p = 0; p < kc; ++p) {
      float* col = panel + p * kMR;
      for (int64_t r = 0; r < kMR; ++r) {
        const int64_t row = i0 + r;
        col[r] = row < m ? a[row * lda + kk + p] : 0.0f;
      }
    }
  }
}

/// Same panel from the transposed source: `at` is [k, m] row-major, so tap
/// (row, kk + p) lives at at[(kk + p) * ldat + row]. Byte-identical output.
void pack_a_panel_from_at(int64_t m, int64_t k, const float* at, int64_t ldat,
                          int64_t m_round, int64_t i0, float* dst) {
  for (int64_t kk = 0; kk < k; kk += kBlockK) {
    const int64_t kc = std::min(kBlockK, k - kk);
    float* panel = dst + m_round * kk + i0 * kc;
    for (int64_t p = 0; p < kc; ++p) {
      const float* src = at + (kk + p) * ldat;
      float* col = panel + p * kMR;
      for (int64_t r = 0; r < kMR; ++r) {
        const int64_t row = i0 + r;
        col[r] = row < m ? src[row] : 0.0f;
      }
    }
  }
}

void pack_a_rowmajor(int64_t m, int64_t k, const float* a, int64_t lda,
                     float* dst) {
  const int64_t m_round = ceil_div(m, kMR) * kMR;
  for (int64_t i0 = 0; i0 < m_round; i0 += kMR) {
    pack_a_panel(m, k, a, lda, m_round, i0, dst);
  }
}

void pack_a_rowmajor(ThreadPool& pool, int64_t m, int64_t k, const float* a,
                     int64_t lda, float* dst, int max_width) {
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t m_round = mpan * kMR;
  pool.parallel_for(
      mpan,
      [&](int64_t p0, int64_t p1) {
        for (int64_t ip = p0; ip < p1; ++ip) {
          pack_a_panel(m, k, a, lda, m_round, ip * kMR, dst);
        }
      },
      max_width);
}

void pack_a_from_at(int64_t m, int64_t k, const float* at, int64_t ldat,
                    float* dst) {
  const int64_t m_round = ceil_div(m, kMR) * kMR;
  for (int64_t i0 = 0; i0 < m_round; i0 += kMR) {
    pack_a_panel_from_at(m, k, at, ldat, m_round, i0, dst);
  }
}

void pack_a_from_at(ThreadPool& pool, int64_t m, int64_t k, const float* at,
                    int64_t ldat, float* dst, int max_width) {
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t m_round = mpan * kMR;
  pool.parallel_for(
      mpan,
      [&](int64_t p0, int64_t p1) {
        for (int64_t ip = p0; ip < p1; ++ip) {
          pack_a_panel_from_at(m, k, at, ldat, m_round, ip * kMR, dst);
        }
      },
      max_width);
}

/// Packs the B panel at column offset j0 across every k block.
void pack_b_panel_from_bt(int64_t n, int64_t k, const float* bt, int64_t ldbt,
                          int64_t n_round, int64_t j0, float* dst) {
  for (int64_t kk = 0; kk < k; kk += kBlockK) {
    const int64_t kc = std::min(kBlockK, k - kk);
    float* panel = dst + n_round * kk + j0 * kc;
    // Walk source rows (columns of B) so each bt row streams sequentially.
    for (int64_t c = 0; c < kNR; ++c) {
      const int64_t col = j0 + c;
      if (col < n) {
        const float* src = bt + col * ldbt + kk;
        for (int64_t p = 0; p < kc; ++p) panel[p * kNR + c] = src[p];
      } else {
        for (int64_t p = 0; p < kc; ++p) panel[p * kNR + c] = 0.0f;
      }
    }
  }
}

void pack_b_from_bt(int64_t n, int64_t k, const float* bt, int64_t ldbt,
                    float* dst) {
  const int64_t n_round = ceil_div(n, kNR) * kNR;
  for (int64_t j0 = 0; j0 < n_round; j0 += kNR) {
    pack_b_panel_from_bt(n, k, bt, ldbt, n_round, j0, dst);
  }
}

void pack_b_from_bt(ThreadPool& pool, int64_t n, int64_t k, const float* bt,
                    int64_t ldbt, float* dst, int max_width) {
  const int64_t npan = ceil_div(n, kNR);
  const int64_t n_round = npan * kNR;
  pool.parallel_for(
      npan,
      [&](int64_t p0, int64_t p1) {
        for (int64_t jp = p0; jp < p1; ++jp) {
          pack_b_panel_from_bt(n, k, bt, ldbt, n_round, jp * kNR, dst);
        }
      },
      max_width);
}

void run_packed(ThreadPool& pool, int64_t m, int64_t n, int64_t k, float alpha,
                const float* apack, const float* bpack, float beta, float* c,
                int64_t ldc, const GemmEpilogue& ep, int max_width) {
  if (m <= 0 || n <= 0) return;
  const simd::MicroKernelFn micro = simd::micro_kernel();
  const simd::MicroKernelFn micro1 = simd::micro_kernel_mr1();
  const simd::MicroKernelWideFn wide = simd::micro_kernel_wide();
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t npan = ceil_div(n, kNR);
  const int64_t m_round = mpan * kMR;
  const int64_t n_round = npan * kNR;
  // k == 0 still runs one zero-depth slice so beta scaling and the epilogue
  // are applied.
  const int64_t kblocks = std::max<int64_t>(1, ceil_div(k, kBlockK));
  const auto body = [&](int64_t jp0, int64_t jp1) {
    for (int64_t jp = jp0; jp < jp1;) {
      const int64_t j0 = jp * kNR;
      const int nr = static_cast<int>(std::min<int64_t>(kNR, n - j0));
      // Pair this panel with the next one for the 6x32 AVX-512 tile when
      // both are full width and still inside this chunk. The wide tile is
      // bit-identical to two 16-wide calls (simd.h), so pairing is a pure
      // throughput decision local to the chunk — results never depend on
      // it. m == 1 keeps the mr1 kernel, which skips the padded rows the
      // wide tile would compute.
      const bool pair =
          wide != nullptr && m > 1 && jp + 1 < jp1 && j0 + 2 * kNR <= n;
      for (int64_t kb = 0; kb < kblocks; ++kb) {
        const int64_t kk = kb * kBlockK;
        const int64_t kc = std::max<int64_t>(0, std::min(kBlockK, k - kk));
        const float* ablock = apack + m_round * kk;
        const float* bpanel = bpack + n_round * kk + j0 * kc;
        const bool last = kb + 1 == kblocks;
        const float beta_eff = kb == 0 ? beta : 1.0f;
        for (int64_t ip = 0; ip < mpan; ++ip) {
          const int64_t i0 = ip * kMR;
          const int mr = static_cast<int>(std::min<int64_t>(kMR, m - i0));
          simd::TileEpilogue te;
          const simd::TileEpilogue* tep = nullptr;
          if (last && !ep.empty()) {
            te.row_scale = ep.row_scale != nullptr ? ep.row_scale + i0 : nullptr;
            te.row_shift = ep.row_shift != nullptr ? ep.row_shift + i0 : nullptr;
            te.col_scale = ep.col_scale != nullptr ? ep.col_scale + j0 : nullptr;
            te.col_shift = ep.col_shift != nullptr ? ep.col_shift + j0 : nullptr;
            te.act = ep.act;
            tep = &te;
          }
          if (pair) {
            wide(kc, ablock + i0 * kc, bpanel, kNR, bpanel + kNR * kc, kNR,
                 c + i0 * ldc + j0, ldc, mr, alpha, beta_eff, tep);
          } else {
            (mr == 1 ? micro1 : micro)(kc, ablock + i0 * kc, bpanel, kNR,
                                       c + i0 * ldc + j0, ldc, mr, nr, alpha,
                                       beta_eff, tep);
          }
        }
      }
      jp += pair ? 2 : 1;
    }
  };
  pool.parallel_for(npan, body, max_width);
}

void run_packed_b_rowmajor(ThreadPool& pool, int64_t m, int64_t n, int64_t k,
                           float alpha, const float* apack, const float* b,
                           int64_t ldb, float beta, float* c, int64_t ldc,
                           const GemmEpilogue& ep, int max_width) {
  if (m <= 0 || n <= 0) return;
  const simd::MicroKernelFn micro = simd::micro_kernel();
  const simd::MicroKernelFn micro1 = simd::micro_kernel_mr1();
  const simd::MicroKernelWideFn wide = simd::micro_kernel_wide();
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t npan = ceil_div(n, kNR);
  const int64_t m_round = mpan * kMR;
  const int64_t kblocks = std::max<int64_t>(1, ceil_div(k, kBlockK));
  const auto body = [&](int64_t jp0, int64_t jp1) {
    // Scratch for the single ragged column panel (zero-padded); lives on the
    // worker's stack so tasks never contend.
    alignas(simd::kAlign) float edge[kBlockK * kNR];
    for (int64_t jp = jp0; jp < jp1;) {
      const int64_t j0 = jp * kNR;
      const int nr = static_cast<int>(std::min<int64_t>(kNR, n - j0));
      // Wide-tile pairing (see run_packed): two adjacent full panels of the
      // in-place row-major B are 32 consecutive floats per row.
      const bool pair =
          wide != nullptr && m > 1 && jp + 1 < jp1 && j0 + 2 * kNR <= n;
      for (int64_t kb = 0; kb < kblocks; ++kb) {
        const int64_t kk = kb * kBlockK;
        const int64_t kc = std::max<int64_t>(0, std::min(kBlockK, k - kk));
        const float* ablock = apack + m_round * kk;
        const float* bpanel;
        int64_t bstride;
        if (nr == kNR) {
          bpanel = b + kk * ldb + j0;  // in place: 16 floats per row
          bstride = ldb;
        } else {
          for (int64_t p = 0; p < kc; ++p) {
            const float* src = b + (kk + p) * ldb + j0;
            for (int j = 0; j < nr; ++j) edge[p * kNR + j] = src[j];
            for (int j = nr; j < kNR; ++j) edge[p * kNR + j] = 0.0f;
          }
          bpanel = edge;
          bstride = kNR;
        }
        const bool last = kb + 1 == kblocks;
        const float beta_eff = kb == 0 ? beta : 1.0f;
        for (int64_t ip = 0; ip < mpan; ++ip) {
          const int64_t i0 = ip * kMR;
          const int mr = static_cast<int>(std::min<int64_t>(kMR, m - i0));
          simd::TileEpilogue te;
          const simd::TileEpilogue* tep = nullptr;
          if (last && !ep.empty()) {
            te.row_scale = ep.row_scale != nullptr ? ep.row_scale + i0 : nullptr;
            te.row_shift = ep.row_shift != nullptr ? ep.row_shift + i0 : nullptr;
            te.col_scale = ep.col_scale != nullptr ? ep.col_scale + j0 : nullptr;
            te.col_shift = ep.col_shift != nullptr ? ep.col_shift + j0 : nullptr;
            te.act = ep.act;
            tep = &te;
          }
          if (pair) {
            wide(kc, ablock + i0 * kc, bpanel, bstride, bpanel + kNR, bstride,
                 c + i0 * ldc + j0, ldc, mr, alpha, beta_eff, tep);
          } else {
            (mr == 1 ? micro1 : micro)(kc, ablock + i0 * kc, bpanel, bstride,
                                       c + i0 * ldc + j0, ldc, mr, nr, alpha,
                                       beta_eff, tep);
          }
        }
      }
      jp += pair ? 2 : 1;
    }
  };
  pool.parallel_for(npan, body, max_width);
}

int64_t producer_slab_floats(ThreadPool& pool, int64_t n, int max_width) {
  if (n <= 0) return 0;
  const int64_t npan = ceil_div(n, kNR);
  const int64_t nchunks = ceil_div(npan, pool.chunk_size(npan, max_width));
  const int64_t per_chunk =
      (simd::micro_kernel_wide() != nullptr ? 2 : 1) * kBlockK * kNR;
  return nchunks * per_chunk;
}

void run_packed_b_producer(const ExecutionContext& ctx, int64_t m, int64_t n,
                           int64_t k, float alpha, const float* apack,
                           const PanelProducer& produce, float beta, float* c,
                           int64_t ldc, const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  ThreadPool& pool = ctx.pool();
  const simd::MicroKernelFn micro = simd::micro_kernel();
  const simd::MicroKernelFn micro1 = simd::micro_kernel_mr1();
  const simd::MicroKernelWideFn wide = simd::micro_kernel_wide();
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t npan = ceil_div(n, kNR);
  const int64_t m_round = mpan * kMR;
  const int64_t kblocks = std::max<int64_t>(1, ceil_div(k, kBlockK));
  // One scratch slab per parallel_for chunk — [kBlockK x kNR], doubled when
  // the wide tile can consume panel pairs — allocated up front on the
  // calling thread (the arena is single-threaded) and indexed by the chunk
  // origin, which parallel_for guarantees is a multiple of chunk_size. A
  // task processes its panels serially, so one slab per chunk suffices, and
  // the whole allocation rewinds when the call returns.
  // producer_slab_floats() mirrors this accounting for tests. The context's
  // intra-op width reaches BOTH the split and the slab keying, so the
  // chunk-origin contract holds under a cap exactly as it does without one.
  ArenaScope scope(ctx.arena());
  const int width = ctx.intra_op_width();
  const int64_t chunk = pool.chunk_size(npan, width);
  const int64_t slab = (wide != nullptr ? 2 : 1) * kBlockK * kNR;
  float* scratch = ctx.arena().alloc(producer_slab_floats(pool, n, width));
  const auto body = [&](int64_t jp0, int64_t jp1) {
    // Slab aliasing here would mean silent output corruption, so the
    // chunk-origin contract (threadpool.h) is enforced in debug builds.
    assert(jp0 % chunk == 0 && jp1 - jp0 <= chunk);
    float* panel = scratch + (jp0 / chunk) * slab;
    for (int64_t jp = jp0; jp < jp1;) {
      const int64_t j0 = jp * kNR;
      const int nr = static_cast<int>(std::min<int64_t>(kNR, n - j0));
      // Wide-tile pairing (see run_packed): produce the neighbor panel into
      // the second half of the slab and feed both to the 6x32 tile.
      const bool pair =
          wide != nullptr && m > 1 && jp + 1 < jp1 && j0 + 2 * kNR <= n;
      for (int64_t kb = 0; kb < kblocks; ++kb) {
        const int64_t kk = kb * kBlockK;
        const int64_t kc = std::max<int64_t>(0, std::min(kBlockK, k - kk));
        produce(kk, kc, j0, nr, panel);
        if (pair) produce(kk, kc, j0 + kNR, kNR, panel + kBlockK * kNR);
        const bool last = kb + 1 == kblocks;
        const float beta_eff = kb == 0 ? beta : 1.0f;
        for (int64_t ip = 0; ip < mpan; ++ip) {
          const int64_t i0 = ip * kMR;
          const int mr = static_cast<int>(std::min<int64_t>(kMR, m - i0));
          simd::TileEpilogue te;
          const simd::TileEpilogue* tep = nullptr;
          if (last && !ep.empty()) {
            te.row_scale = ep.row_scale != nullptr ? ep.row_scale + i0 : nullptr;
            te.row_shift = ep.row_shift != nullptr ? ep.row_shift + i0 : nullptr;
            te.col_scale = ep.col_scale != nullptr ? ep.col_scale + j0 : nullptr;
            te.col_shift = ep.col_shift != nullptr ? ep.col_shift + j0 : nullptr;
            te.act = ep.act;
            tep = &te;
          }
          if (pair) {
            wide(kc, apack + m_round * kk + i0 * kc, panel, kNR,
                 panel + kBlockK * kNR, kNR, c + i0 * ldc + j0, ldc, mr, alpha,
                 beta_eff, tep);
          } else {
            (mr == 1 ? micro1 : micro)(kc, apack + m_round * kk + i0 * kc,
                                       panel, kNR, c + i0 * ldc + j0, ldc, mr,
                                       nr, alpha, beta_eff, tep);
          }
        }
      }
      jp += pair ? 2 : 1;
    }
  };
  pool.parallel_for(npan, body, width);
}

// ------------------------------------------------------------------ int8 --

int64_t packed_a_i8_bytes(int64_t m, int64_t k) {
  return ceil_div(m, kMR) * ceil_div(std::max<int64_t>(k, 1), kKG) * kMR * kKG;
}

int64_t panel_b_i8_bytes(int64_t k) {
  return ceil_div(std::max<int64_t>(k, 1), kKG) * kNR * kKG;
}

void pack_a_i8(int64_t m, int64_t k, const int8_t* a, int64_t lda,
               int8_t* dst) {
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t kg = ceil_div(std::max<int64_t>(k, 1), kKG);
  for (int64_t ip = 0; ip < mpan; ++ip) {
    int8_t* panel = dst + ip * kg * kMR * kKG;
    for (int64_t g = 0; g < kg; ++g) {
      int8_t* grp = panel + g * kMR * kKG;
      for (int64_t r = 0; r < kMR; ++r) {
        const int64_t row = ip * kMR + r;
        for (int64_t t = 0; t < kKG; ++t) {
          const int64_t p = g * kKG + t;
          grp[r * kKG + t] = row < m && p < k ? a[row * lda + p] : int8_t{0};
        }
      }
    }
  }
}

void run_packed_i8_producer(const ExecutionContext& ctx, int64_t m, int64_t n,
                            int64_t k, const int8_t* apack,
                            const PanelProducerU8& produce, float* c,
                            int64_t ldc, const simd::QuantEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  ThreadPool& pool = ctx.pool();
  const simd::MicroKernelI8Fn micro = simd::micro_kernel_i8();
  const int64_t mpan = ceil_div(m, kMR);
  const int64_t npan = ceil_div(n, kNR);
  const int64_t kg = ceil_div(std::max<int64_t>(k, 1), kKG);
  const int64_t a_panel_bytes = kg * kMR * kKG;
  // No kBlockK slicing: the u7 x s8 dot product over the whole CIFAR-scale
  // depth fits i32 exactly (k * 127 * 127 << 2^31), so accumulators live in
  // registers across all of k and the epilogue runs once per tile. The
  // per-chunk slab is one full-depth u8 panel — kg * kNR * kKG bytes, a
  // 16th of the f32 producer's f32 slab at equal depth.
  ArenaScope scope(ctx.arena());
  const int width = ctx.intra_op_width();
  const int64_t chunk = pool.chunk_size(npan, width);
  const int64_t nchunks = ceil_div(npan, chunk);
  const int64_t slab_bytes = panel_b_i8_bytes(k);
  uint8_t* scratch = reinterpret_cast<uint8_t*>(
      ctx.arena().alloc(ceil_div(nchunks * slab_bytes,
                                 static_cast<int64_t>(sizeof(float)))));
  const auto body = [&](int64_t jp0, int64_t jp1) {
    assert(jp0 % chunk == 0 && jp1 - jp0 <= chunk);
    uint8_t* panel = scratch + (jp0 / chunk) * slab_bytes;
    for (int64_t jp = jp0; jp < jp1; ++jp) {
      const int64_t j0 = jp * kNR;
      const int nr = static_cast<int>(std::min<int64_t>(kNR, n - j0));
      produce(0, k, j0, nr, panel);
      for (int64_t ip = 0; ip < mpan; ++ip) {
        const int64_t i0 = ip * kMR;
        const int mr = static_cast<int>(std::min<int64_t>(kMR, m - i0));
        const simd::QuantEpilogue te{ep.scale + i0, ep.shift + i0, ep.act};
        micro(kg, apack + ip * a_panel_bytes, panel, c + i0 * ldc + j0, ldc,
              mr, nr, te);
      }
    }
  };
  pool.parallel_for(npan, body, width);
}

}  // namespace packdetail

// -------------------------------------------------------------- PackedGemm --

void PackedGemm::AlignedDeleter::operator()(float* p) const {
  ::operator delete[](p, std::align_val_t(simd::kAlign));
}

float* PackedGemm::reserve(int64_t floats, WorkspaceArena* arena) {
  // Re-preparing a layer (same or smaller shape, same backing source)
  // re-packs into the storage already held: arena-backed packs sit below
  // every ArenaScope mark and can never be rewound, so allocating again
  // would orphan the old panels. Reuse requires the SAME arena — storage
  // from a different (possibly destroyed) context's arena must not be
  // written through.
  if (store_ != nullptr && floats <= capacity_ && arena == arena_) {
    return store_;
  }
  if (arena != nullptr) {
    owned_.reset();
    store_ = arena->alloc(floats);
  } else {
    // Cached weight panels with no arena supplied: taken once per model
    // load, never on the inference path (which always passes the arena).
    // lint: allow-heap(prepare-time no-arena weight-cache fallback)
    float* p = new (std::align_val_t(simd::kAlign))
        float[static_cast<size_t>(floats)];
    owned_.reset(p);
    store_ = p;
  }
  arena_ = arena;
  capacity_ = floats;
  return store_;
}

void PackedGemm::clear() {
  if (owned_ != nullptr) {
    owned_.reset();
    store_ = nullptr;
    arena_ = nullptr;
    capacity_ = 0;
  }
  // An arena-backed store_ cannot be returned to its arena; it is retained
  // (with its arena tag) so a re-pack after clear() — pruning invalidation —
  // against the same context reuses the same bytes.
  data_ = nullptr;
  side_ = Side::kNone;
  m_ = n_ = k_ = 0;
}

void PackedGemm::pack_a(int64_t m, int64_t k, const float* a,
                        WorkspaceArena* arena) {
  float* dst = reserve(packdetail::packed_a_floats(m, k), arena);
  packdetail::pack_a_rowmajor(m, k, a, k, dst);
  data_ = dst;
  side_ = Side::kA;
  m_ = m;
  n_ = 0;
  k_ = k;
}

void PackedGemm::pack_b_transposed(int64_t n, int64_t k, const float* bt,
                                   WorkspaceArena* arena) {
  float* dst = reserve(packdetail::packed_b_floats(k, n), arena);
  packdetail::pack_b_from_bt(n, k, bt, k, dst);
  data_ = dst;
  side_ = Side::kB;
  m_ = 0;
  n_ = n;
  k_ = k;
}

void PackedGemm::run(const ExecutionContext& ctx, int64_t n, float alpha,
                     const float* b, float beta, float* c,
                     const GemmEpilogue& ep) const {
  if (side_ != Side::kA) {
    throw std::logic_error("PackedGemm::run: operand not packed as A");
  }
  packdetail::run_packed_b_rowmajor(ctx.pool(), m_, n, k_, alpha, data_, b, n,
                                    beta, c, n, ep, ctx.intra_op_width());
}

void PackedGemm::run_with_a(const ExecutionContext& ctx, int64_t m,
                            float alpha, const float* a, float beta, float* c,
                            const GemmEpilogue& ep) const {
  if (side_ != Side::kB) {
    throw std::logic_error("PackedGemm::run_with_a: operand not packed as B");
  }
  ArenaScope scope(ctx.arena());
  float* ap = ctx.arena().alloc(packdetail::packed_a_floats(m, k_));
  packdetail::pack_a_rowmajor(ctx.pool(), m, k_, a, k_, ap,
                              ctx.intra_op_width());
  packdetail::run_packed(ctx.pool(), m, n_, k_, alpha, ap, data_, beta, c, n_,
                         ep, ctx.intra_op_width());
}

}  // namespace tbnet
