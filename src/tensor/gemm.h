#pragma once
// Single-precision matrix multiplication kernels.
//
// These are the workhorses behind convolution (via im2col) and dense layers,
// including their backward passes, which need the transposed variants.
// The kernels are cache-blocked and parallelized over output rows with the
// shared ThreadPool. Accumulation is float (inputs are small CIFAR-scale
// nets; fp32 accumulation matches the reference frameworks).

#include <cstdint>

#include "tensor/execution_context.h"

namespace tbnet {

// Each kernel has a context-taking form (shards on ctx.pool()) and a legacy
// form that runs on the global pool. Results are bit-identical across pool
// sizes and batch shapes: the per-element accumulation order depends only on
// k, never on the row/column partitioning.

/// C[m,n] = alpha * A[m,k] * B[k,n] + beta * C[m,n]
void gemm_nn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[m,n] = alpha * A[m,k] * B^T (B is [n,k]) + beta * C
void gemm_nt(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_nt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[m,n] = alpha * A^T (A is [k,m]) * B[k,n] + beta * C
void gemm_tn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_tn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// y[m] = alpha * A[m,n] * x[n] + beta * y[m]
void gemv(int64_t m, int64_t n, float alpha, const float* a, const float* x,
          float beta, float* y);

}  // namespace tbnet
