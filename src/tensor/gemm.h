#pragma once
// Single-precision matrix multiplication kernels.
//
// These are the workhorses behind convolution (via im2col) and dense layers,
// including their backward passes, which need the transposed variants.
//
// Two implementations live behind each entry point:
//   * packed SIMD (default): operands are packed into microkernel panels
//     (pack.h) and driven through the 6x16 FMA microkernel (simd.h), with an
//     optional fused per-row/per-column epilogue (bias, BN scale/shift,
//     ReLU/ReLU6) so conv -> BN -> activation is one pass over C;
//   * scalar reference: the register-blocked PR-1 kernels, kept verbatim and
//     selected by TBNET_DETERMINISTIC=1 (or exposed directly as
//     gemm_*_reference for parity tests and benchmarks).
//
// Determinism: within either implementation, the per-element accumulation
// order depends only on k — never on row/column partitioning, pool size, or
// batch shape — so batched results stay bit-identical to per-image calls.
// Across the two implementations (and across fused vs. unfused epilogues)
// results agree to tight relative tolerance (~1e-6 for CIFAR-scale shapes;
// tests enforce 1e-4), not bitwise.

#include <cstdint>

#include "tensor/execution_context.h"
#include "tensor/pack.h"

namespace tbnet {

// Each kernel has a context-taking form (shards on ctx.pool(), packs scratch
// into ctx's arena) and a legacy form that runs on the calling thread's
// default context.

/// C[m,n] = alpha * A[m,k] * B[k,n] + beta * C[m,n]
void gemm_nn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_nn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta, float* c,
             const GemmEpilogue& ep);
void gemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[m,n] = alpha * A[m,k] * B^T (B is [n,k]) + beta * C
void gemm_nt(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_nt(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta, float* c,
             const GemmEpilogue& ep);
void gemm_nt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// C[m,n] = alpha * A^T (A is [k,m]) * B[k,n] + beta * C
/// Backward-only (weight-gradient accumulation and dcols). Runs the packed
/// microkernel path — A^T packs into the same panels the un-transposed
/// matrix would, B is consumed in place, and k (the batch*spatial axis for
/// weight gradients) is sliced by the driver's k-blocking — except for
/// n < kNR heads and under TBNET_DETERMINISTIC=1, which keep the scalar
/// reference kernel.
void gemm_tn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c);
void gemm_tn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c);

/// y[m] = alpha * A[m,n] * x[n] + beta * y[m]. SIMD dot-product rows
/// (parallelized on the context pool); scalar under TBNET_DETERMINISTIC=1.
void gemv(const ExecutionContext& ctx, int64_t m, int64_t n, float alpha,
          const float* a, const float* x, float beta, float* y);
void gemv(int64_t m, int64_t n, float alpha, const float* a, const float* x,
          float beta, float* y);

/// The PR-1 scalar blocked kernels, bit-stable across releases. These are
/// what TBNET_DETERMINISTIC=1 routes to; exported so parity tests and
/// benchmarks can compare the fast path against them in-process.
void gemm_nn_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c);
void gemm_nt_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c);
void gemm_tn_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c);
void gemv_reference(int64_t m, int64_t n, float alpha, const float* a,
                    const float* x, float beta, float* y);

/// Separate-pass epilogue over C[m,n] (row stride ldc) — the unfused
/// reference for GemmEpilogue, also used by the deterministic fallback.
void apply_epilogue_reference(int64_t m, int64_t n, float* c, int64_t ldc,
                              const GemmEpilogue& ep);

}  // namespace tbnet
