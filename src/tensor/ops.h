#pragma once
// Elementwise and reduction kernels shared by layers and losses.

#include <cstdint>
#include <vector>

#include "tensor/execution_context.h"
#include "tensor/tensor.h"

namespace tbnet {

/// out = a + b (shapes must match).
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a * b elementwise.
Tensor mul(const Tensor& a, const Tensor& b);

// Context forms: write into caller-provided `out` (resized/reshaped to match
// `a`), sharding the elementwise loop on ctx.pool(). Reusing `out` across
// calls keeps the serving hot path allocation-free.
void add(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);
void sub(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);
void mul(const ExecutionContext& ctx, const Tensor& a, const Tensor& b,
         Tensor& out);

/// Row-wise softmax over the last dimension of a [n, c] tensor.
Tensor softmax2d(const Tensor& logits);

/// log(softmax) row-wise; numerically stable (max-shifted).
Tensor log_softmax2d(const Tensor& logits);

/// Per-row argmax of a [n, c] tensor.
std::vector<int64_t> argmax_rows(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Mean cross-entropy of [n, c] logits against integer labels; if `grad` is
/// non-null it receives dLoss/dlogits (same shape, already divided by n).
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int64_t>& labels,
                             Tensor* grad = nullptr);

}  // namespace tbnet
