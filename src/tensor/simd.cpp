#include "tensor/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define TBNET_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define TBNET_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace tbnet::simd {
namespace {

// ---------------------------------------------------------------- scalar --

/// Portable fallback. Plain multiply-add (no forced FMA: on hosts without
/// hardware FMA std::fmaf is a libm call per element). All tiles go through
/// the same code, so the path is internally batch-invariant even though its
/// bits differ from the FMA ISAs'.
void micro_scalar(int64_t kc, const float* a_panel, const float* b_panel,
                  int64_t bstride, float* c, int64_t ldc, int mr, int nr,
                  float alpha, float beta, const TileEpilogue* ep) {
  float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* ap = a_panel + p * kMR;
    const float* bp = b_panel + p * bstride;
    for (int i = 0; i < kMR; ++i) {
      const float a = ap[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += a * bp[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float rs = ep != nullptr && ep->row_scale != nullptr
                         ? ep->row_scale[i] : 1.0f;
    const float rh = ep != nullptr && ep->row_shift != nullptr
                         ? ep->row_shift[i] : 0.0f;
    for (int j = 0; j < nr; ++j) {
      float v = alpha * acc[i][j];
      if (beta != 0.0f) v += beta * crow[j];
      if (ep != nullptr) {
        v = v * rs + rh;
        if (ep->col_scale != nullptr) v *= ep->col_scale[j];
        if (ep->col_shift != nullptr) v += ep->col_shift[j];
        v = apply_act(v, ep->act);
      }
      crow[j] = v;
    }
  }
}

float dot_scalar(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// ------------------------------------------------------- depthwise rows --

/// Output-column range [lo, hi) of [0, n) whose taps are all horizontally in
/// bounds — the steady state the vector loops run with no per-pixel checks.
struct DwInterior {
  int64_t lo, hi;
};

/// Bounds of the zero-staged narrow-row fast path (stack buffer sizing).
constexpr int64_t kDwStageWidth = 32;
constexpr int64_t kDwStageRows = 16;

DwInterior dw_interior(int64_t kw, int64_t iw, int64_t pad_w, int64_t stride_w,
                       int64_t ox0, int64_t n) {
  // ox is interior iff ox*stride - pad >= 0 and ox*stride - pad + kw <= iw.
  const int64_t ox_lo = (pad_w + stride_w - 1) / stride_w;
  const int64_t span = iw - kw + pad_w;  // max interior ox*stride
  DwInterior r;
  r.lo = std::clamp<int64_t>(ox_lo - ox0, 0, n);
  r.hi = span < 0 ? r.lo : std::clamp<int64_t>(span / stride_w + 1 - ox0, r.lo, n);
  return r;
}

/// Border pixel, FMA chain: out-of-bounds taps and null rows are skipped, so
/// the chain for valid taps matches the vector lanes' (which only ever see
/// all-valid taps) tap for tap. std::fmaf rounds identically to vector FMA.
inline float dw_pixel_fmaf(const float* const* rows, int64_t kh,
                           const float* taps, int64_t kw, int64_t iw,
                           int64_t ix0) {
  float acc = 0.0f;
  for (int64_t ky = 0; ky < kh; ++ky) {
    const float* row = rows[ky];
    if (row == nullptr) continue;
    for (int64_t kx = 0; kx < kw; ++kx) {
      const int64_t ix = ix0 + kx;
      if (ix < 0 || ix >= iw) continue;
      acc = std::fmaf(row[ix], taps[ky * kw + kx], acc);
    }
  }
  return acc;
}

/// Border pixel, plain multiply-add — the scalar ISA's chain (matches its
/// interior loop; no forced FMA, see micro_scalar).
inline float dw_pixel_muladd(const float* const* rows, int64_t kh,
                             const float* taps, int64_t kw, int64_t iw,
                             int64_t ix0) {
  float acc = 0.0f;
  for (int64_t ky = 0; ky < kh; ++ky) {
    const float* row = rows[ky];
    if (row == nullptr) continue;
    for (int64_t kx = 0; kx < kw; ++kx) {
      const int64_t ix = ix0 + kx;
      if (ix < 0 || ix >= iw) continue;
      acc += row[ix] * taps[ky * kw + kx];
    }
  }
  return acc;
}

/// Portable fallback: plain multiply-add with an interior/border split so
/// even the scalar ISA skips per-pixel bounds checks in the steady state.
void dw_row_scalar(const float* const* rows, int64_t kh, const float* taps,
                   int64_t kw, int64_t iw, int64_t pad_w, int64_t stride_w,
                   int64_t ox0, int64_t n, float scale, float shift, Act act,
                   float* out) {
  const DwInterior in = dw_interior(kw, iw, pad_w, stride_w, ox0, n);
  int64_t t = 0;
  for (; t < in.lo; ++t) {
    const float acc = dw_pixel_muladd(rows, kh, taps, kw, iw,
                                      (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(acc * scale + shift, act);
  }
  for (; t < in.hi; ++t) {
    const int64_t ix0 = (ox0 + t) * stride_w - pad_w;
    float acc = 0.0f;
    for (int64_t ky = 0; ky < kh; ++ky) {
      const float* row = rows[ky];
      if (row == nullptr) continue;
      for (int64_t kx = 0; kx < kw; ++kx) {
        acc += row[ix0 + kx] * taps[ky * kw + kx];
      }
    }
    out[t] = apply_act(acc * scale + shift, act);
  }
  for (; t < n; ++t) {
    const float acc = dw_pixel_muladd(rows, kh, taps, kw, iw,
                                      (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(acc * scale + shift, act);
  }
}

// ------------------------------------------------------------------ AVX2 --

#if TBNET_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
#define TBNET_SIMD_HAVE_AVX2 1

/// 6x16 FMA microkernel: 12 ymm accumulators + 2 B vectors + 1 A broadcast.
/// Compiled for avx2+fma via target attribute; only dispatched after a
/// runtime __builtin_cpu_supports check.
__attribute__((target("avx2,fma"))) void micro_avx2(
    int64_t kc, const float* a_panel, const float* b_panel, int64_t bstride,
    float* c, int64_t ldc, int mr, int nr, float alpha, float beta,
    const TileEpilogue* ep) {
  // Named accumulators: an acc[6][2] array here makes GCC keep the array
  // live on the stack and store every accumulator once per k iteration
  // (12 extra stores per tap — enough to halve throughput). With scalars the
  // hot loop is exactly 12 FMAs + 2 loads + 6 broadcasts.
  __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
  __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
  __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
  __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
  __m256 a40 = _mm256_setzero_ps(), a41 = _mm256_setzero_ps();
  __m256 a50 = _mm256_setzero_ps(), a51 = _mm256_setzero_ps();
  for (int64_t p = 0; p < kc; ++p) {
    // B rows may be strided (in-place row-major B); prefetch a few rows
    // ahead so the L2 latency of large-ldb strides hides under the FMAs.
    _mm_prefetch(reinterpret_cast<const char*>(b_panel + (p + 8) * bstride),
                 _MM_HINT_T0);
    const __m256 b0 = _mm256_loadu_ps(b_panel + p * bstride);
    const __m256 b1 = _mm256_loadu_ps(b_panel + p * bstride + 8);
    const float* ap = a_panel + p * kMR;
    __m256 a;
    a = _mm256_broadcast_ss(ap + 0);
    a00 = _mm256_fmadd_ps(a, b0, a00);
    a01 = _mm256_fmadd_ps(a, b1, a01);
    a = _mm256_broadcast_ss(ap + 1);
    a10 = _mm256_fmadd_ps(a, b0, a10);
    a11 = _mm256_fmadd_ps(a, b1, a11);
    a = _mm256_broadcast_ss(ap + 2);
    a20 = _mm256_fmadd_ps(a, b0, a20);
    a21 = _mm256_fmadd_ps(a, b1, a21);
    a = _mm256_broadcast_ss(ap + 3);
    a30 = _mm256_fmadd_ps(a, b0, a30);
    a31 = _mm256_fmadd_ps(a, b1, a31);
    a = _mm256_broadcast_ss(ap + 4);
    a40 = _mm256_fmadd_ps(a, b0, a40);
    a41 = _mm256_fmadd_ps(a, b1, a41);
    a = _mm256_broadcast_ss(ap + 5);
    a50 = _mm256_fmadd_ps(a, b0, a50);
    a51 = _mm256_fmadd_ps(a, b1, a51);
  }
  const __m256 acc[kMR][2] = {{a00, a01}, {a10, a11}, {a20, a21},
                              {a30, a31}, {a40, a41}, {a50, a51}};

  const __m256 valpha = _mm256_set1_ps(alpha);
  if (mr == kMR && nr == kNR) {
    // Full tile: vector alpha/beta update + epilogue straight from registers.
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      __m256 v0 = _mm256_mul_ps(valpha, acc[i][0]);
      __m256 v1 = _mm256_mul_ps(valpha, acc[i][1]);
      if (beta != 0.0f) {
        const __m256 vbeta = _mm256_set1_ps(beta);
        v0 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(crow), v0);
        v1 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(crow + 8), v1);
      }
      if (ep != nullptr) {
        if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
          const __m256 rs = _mm256_set1_ps(
              ep->row_scale != nullptr ? ep->row_scale[i] : 1.0f);
          const __m256 rh = _mm256_set1_ps(
              ep->row_shift != nullptr ? ep->row_shift[i] : 0.0f);
          v0 = _mm256_fmadd_ps(rs, v0, rh);
          v1 = _mm256_fmadd_ps(rs, v1, rh);
        }
        if (ep->col_scale != nullptr) {
          v0 = _mm256_mul_ps(v0, _mm256_loadu_ps(ep->col_scale));
          v1 = _mm256_mul_ps(v1, _mm256_loadu_ps(ep->col_scale + 8));
        }
        if (ep->col_shift != nullptr) {
          v0 = _mm256_add_ps(v0, _mm256_loadu_ps(ep->col_shift));
          v1 = _mm256_add_ps(v1, _mm256_loadu_ps(ep->col_shift + 8));
        }
        if (ep->act != Act::kNone) {
          const __m256 zero = _mm256_setzero_ps();
          v0 = _mm256_max_ps(v0, zero);
          v1 = _mm256_max_ps(v1, zero);
          if (ep->act == Act::kReLU6) {
            const __m256 six = _mm256_set1_ps(6.0f);
            v0 = _mm256_min_ps(v0, six);
            v1 = _mm256_min_ps(v1, six);
          }
        }
      }
      _mm256_storeu_ps(crow, v0);
      _mm256_storeu_ps(crow + 8, v1);
    }
    return;
  }

  // Edge tile: spill the (zero-padded) accumulators and finalize the valid
  // sub-tile scalar-side. std::fmaf compiles to a scalar vfmadd here (the
  // function is FMA-targeted), so the rounding matches the vector path and an
  // element's bits do not depend on which tile shape covered it.
  alignas(32) float tmp[kMR][kNR];
  for (int i = 0; i < kMR; ++i) {
    _mm256_store_ps(tmp[i], acc[i][0]);
    _mm256_store_ps(tmp[i] + 8, acc[i][1]);
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float rs = ep != nullptr && ep->row_scale != nullptr
                         ? ep->row_scale[i] : 1.0f;
    const float rh = ep != nullptr && ep->row_shift != nullptr
                         ? ep->row_shift[i] : 0.0f;
    for (int j = 0; j < nr; ++j) {
      float v = alpha * tmp[i][j];
      if (beta != 0.0f) v = std::fmaf(beta, crow[j], v);
      if (ep != nullptr) {
        if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
          v = std::fmaf(rs, v, rh);
        }
        if (ep->col_scale != nullptr) v *= ep->col_scale[j];
        if (ep->col_shift != nullptr) v += ep->col_shift[j];
        v = apply_act(v, ep->act);
      }
      crow[j] = v;
    }
  }
}

/// mr == 1 tile: two accumulators, no padded-row work. The per-lane FMA
/// chain over p is identical to the general kernel's row 0, so results are
/// bit-identical — only faster.
__attribute__((target("avx2,fma"))) void micro_avx2_mr1(
    int64_t kc, const float* a_panel, const float* b_panel, int64_t bstride,
    float* c, int64_t ldc, int mr, int nr, float alpha, float beta,
    const TileEpilogue* ep) {
  (void)ldc;
  (void)mr;
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  for (int64_t p = 0; p < kc; ++p) {
    const __m256 a = _mm256_broadcast_ss(a_panel + p * kMR);
    a0 = _mm256_fmadd_ps(a, _mm256_loadu_ps(b_panel + p * bstride), a0);
    a1 = _mm256_fmadd_ps(a, _mm256_loadu_ps(b_panel + p * bstride + 8), a1);
  }
  if (nr == kNR) {
    __m256 v0 = _mm256_mul_ps(_mm256_set1_ps(alpha), a0);
    __m256 v1 = _mm256_mul_ps(_mm256_set1_ps(alpha), a1);
    if (beta != 0.0f) {
      const __m256 vbeta = _mm256_set1_ps(beta);
      v0 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(c), v0);
      v1 = _mm256_fmadd_ps(vbeta, _mm256_loadu_ps(c + 8), v1);
    }
    if (ep != nullptr) {
      if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
        const __m256 rs = _mm256_set1_ps(
            ep->row_scale != nullptr ? ep->row_scale[0] : 1.0f);
        const __m256 rh = _mm256_set1_ps(
            ep->row_shift != nullptr ? ep->row_shift[0] : 0.0f);
        v0 = _mm256_fmadd_ps(rs, v0, rh);
        v1 = _mm256_fmadd_ps(rs, v1, rh);
      }
      if (ep->col_scale != nullptr) {
        v0 = _mm256_mul_ps(v0, _mm256_loadu_ps(ep->col_scale));
        v1 = _mm256_mul_ps(v1, _mm256_loadu_ps(ep->col_scale + 8));
      }
      if (ep->col_shift != nullptr) {
        v0 = _mm256_add_ps(v0, _mm256_loadu_ps(ep->col_shift));
        v1 = _mm256_add_ps(v1, _mm256_loadu_ps(ep->col_shift + 8));
      }
      if (ep->act != Act::kNone) {
        const __m256 zero = _mm256_setzero_ps();
        v0 = _mm256_max_ps(v0, zero);
        v1 = _mm256_max_ps(v1, zero);
        if (ep->act == Act::kReLU6) {
          const __m256 six = _mm256_set1_ps(6.0f);
          v0 = _mm256_min_ps(v0, six);
          v1 = _mm256_min_ps(v1, six);
        }
      }
    }
    _mm256_storeu_ps(c, v0);
    _mm256_storeu_ps(c + 8, v1);
    return;
  }
  alignas(32) float tmp[kNR];
  _mm256_store_ps(tmp, a0);
  _mm256_store_ps(tmp + 8, a1);
  const float rs = ep != nullptr && ep->row_scale != nullptr
                       ? ep->row_scale[0] : 1.0f;
  const float rh = ep != nullptr && ep->row_shift != nullptr
                       ? ep->row_shift[0] : 0.0f;
  for (int j = 0; j < nr; ++j) {
    float v = alpha * tmp[j];
    if (beta != 0.0f) v = std::fmaf(beta, c[j], v);
    if (ep != nullptr) {
      if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
        v = std::fmaf(rs, v, rh);
      }
      if (ep->col_scale != nullptr) v *= ep->col_scale[j];
      if (ep->col_shift != nullptr) v += ep->col_shift[j];
      v = apply_act(v, ep->act);
    }
    c[j] = v;
  }
}

__attribute__((target("avx2,fma"))) float dot_avx2(const float* a,
                                                   const float* b, int64_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc0);
  float total = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5])) +
                ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
  for (; i < n; ++i) total = std::fmaf(a[i], b[i], total);
  return total;
}

/// Even lanes of 16 consecutive floats: p[0], p[2], ..., p[14] — the
/// stride-2 gather. NOTE: reads p[15] too (one float past the last used
/// element); the caller backs the vector range off where that would leave
/// the input row.
__attribute__((target("avx2,fma"))) inline __m256 dw_load_even(
    const float* p) {
  const __m256 lo = _mm256_loadu_ps(p);
  const __m256 hi = _mm256_loadu_ps(p + 8);
  // [lo0 lo2 hi0 hi2 | lo4 lo6 hi4 hi6] -> reorder 64-bit pairs to
  // [lo0 lo2 lo4 lo6 hi0 hi2 hi4 hi6].
  const __m256 ev = _mm256_shuffle_ps(lo, hi, 0x88);
  return _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(ev), 0xD8));
}

/// AVX2 depthwise row kernel: 8 output pixels per vector, per-lane FMA chain
/// in tap order (bit-compatible with the fmaf border path). Interior runs
/// vectorized for stride 1 (with a fully-unrolled 3x3 form) and stride 2
/// (deinterleaved loads); other strides keep the scalar-fmaf loop, which is
/// still chain-compatible.
__attribute__((target("avx2,fma"))) void dw_row_avx2(
    const float* const* rows, int64_t kh, const float* taps, int64_t kw,
    int64_t iw, int64_t pad_w, int64_t stride_w, int64_t ox0, int64_t n,
    float scale, float shift, Act act, float* out) {
  const DwInterior in = dw_interior(kw, iw, pad_w, stride_w, ox0, n);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vshift = _mm256_set1_ps(shift);
  int64_t t = 0;
  if (stride_w == 1 && n >= 8 && in.hi - in.lo < 8 && n <= kDwStageWidth &&
      kh <= kDwStageRows && kw <= kDwStageRows) {
    // Narrow row (MobileNet tail maps: 8x8 and friends): the all-in-bounds
    // interior is shorter than one vector, so the split above would compute
    // every pixel scalar. Stage each tap row's segment into a zero-padded
    // stack buffer instead and run the vector chain over the whole row:
    // a staged 0 contributes exactly nothing to a lane (the accumulator
    // starts at +0 and additions can never produce -0, so fma(0, k, acc)
    // == acc bitwise), which keeps the bits identical to the skip-based
    // border path.
    alignas(32) float staged[kDwStageRows][kDwStageWidth + kDwStageRows];
    const int64_t width = n + kw - 1;
    for (int64_t ky = 0; ky < kh; ++ky) {
      const float* row = rows[ky];
      if (row == nullptr) continue;
      for (int64_t i = 0; i < width; ++i) {
        const int64_t ix = ox0 - pad_w + i;
        staged[ky][i] = ix >= 0 && ix < iw ? row[ix] : 0.0f;
      }
    }
    for (; t + 8 <= n; t += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t ky = 0; ky < kh; ++ky) {
        if (rows[ky] == nullptr) continue;
        for (int64_t kx = 0; kx < kw; ++kx) {
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(staged[ky] + t + kx),
                                _mm256_broadcast_ss(taps + ky * kw + kx), acc);
        }
      }
      __m256 v = _mm256_fmadd_ps(acc, vscale, vshift);
      if (act == Act::kReLU) {
        v = _mm256_max_ps(v, _mm256_setzero_ps());
      } else if (act == Act::kReLU6) {
        v = _mm256_min_ps(_mm256_max_ps(v, _mm256_setzero_ps()),
                          _mm256_set1_ps(6.0f));
      }
      _mm256_storeu_ps(out + t, v);
    }
    for (; t < n; ++t) {
      const float acc =
          dw_pixel_fmaf(rows, kh, taps, kw, iw, (ox0 + t) - pad_w);
      out[t] = apply_act(std::fmaf(acc, scale, shift), act);
    }
    return;
  }
  for (; t < in.lo; ++t) {
    const float acc = dw_pixel_fmaf(rows, kh, taps, kw, iw,
                                    (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(std::fmaf(acc, scale, shift), act);
  }
  if (stride_w == 1) {
    const int64_t base = ox0 - pad_w;
    if (kh == 3 && kw == 3 && rows[0] != nullptr && rows[1] != nullptr &&
        rows[2] != nullptr) {
      // Steady-state 3x3: nine tap broadcasts live in registers across the
      // whole row; the loop body is 9 FMAs + 9 (overlapping) loads.
      const float* r0 = rows[0];
      const float* r1 = rows[1];
      const float* r2 = rows[2];
      const __m256 k00 = _mm256_broadcast_ss(taps + 0);
      const __m256 k01 = _mm256_broadcast_ss(taps + 1);
      const __m256 k02 = _mm256_broadcast_ss(taps + 2);
      const __m256 k10 = _mm256_broadcast_ss(taps + 3);
      const __m256 k11 = _mm256_broadcast_ss(taps + 4);
      const __m256 k12 = _mm256_broadcast_ss(taps + 5);
      const __m256 k20 = _mm256_broadcast_ss(taps + 6);
      const __m256 k21 = _mm256_broadcast_ss(taps + 7);
      const __m256 k22 = _mm256_broadcast_ss(taps + 8);
      for (; t + 8 <= in.hi; t += 8) {
        const int64_t ix = base + t;
        __m256 acc = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + ix), k00,
                                     _mm256_setzero_ps());
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + ix + 1), k01, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r0 + ix + 2), k02, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + ix), k10, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + ix + 1), k11, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r1 + ix + 2), k12, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + ix), k20, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + ix + 1), k21, acc);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(r2 + ix + 2), k22, acc);
        __m256 v = _mm256_fmadd_ps(acc, vscale, vshift);
        if (act == Act::kReLU) {
          v = _mm256_max_ps(v, _mm256_setzero_ps());
        } else if (act == Act::kReLU6) {
          v = _mm256_min_ps(_mm256_max_ps(v, _mm256_setzero_ps()),
                            _mm256_set1_ps(6.0f));
        }
        _mm256_storeu_ps(out + t, v);
      }
    } else {
      for (; t + 8 <= in.hi; t += 8) {
        const int64_t ix = base + t;
        __m256 acc = _mm256_setzero_ps();
        for (int64_t ky = 0; ky < kh; ++ky) {
          const float* row = rows[ky];
          if (row == nullptr) continue;
          for (int64_t kx = 0; kx < kw; ++kx) {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(row + ix + kx),
                                  _mm256_broadcast_ss(taps + ky * kw + kx),
                                  acc);
          }
        }
        __m256 v = _mm256_fmadd_ps(acc, vscale, vshift);
        if (act == Act::kReLU) {
          v = _mm256_max_ps(v, _mm256_setzero_ps());
        } else if (act == Act::kReLU6) {
          v = _mm256_min_ps(_mm256_max_ps(v, _mm256_setzero_ps()),
                            _mm256_set1_ps(6.0f));
        }
        _mm256_storeu_ps(out + t, v);
      }
    }
  } else if (stride_w == 2) {
    for (; t + 8 <= in.hi; t += 8) {
      const int64_t ix = (ox0 + t) * 2 - pad_w;
      // dw_load_even touches index ix + kx + 15; the last one used is +14.
      // Hand the trailing pixels to the scalar tail when the extra lane
      // would cross the row end.
      if (ix + (kw - 1) + 15 >= iw) break;
      __m256 acc = _mm256_setzero_ps();
      for (int64_t ky = 0; ky < kh; ++ky) {
        const float* row = rows[ky];
        if (row == nullptr) continue;
        for (int64_t kx = 0; kx < kw; ++kx) {
          acc = _mm256_fmadd_ps(dw_load_even(row + ix + kx),
                                _mm256_broadcast_ss(taps + ky * kw + kx), acc);
        }
      }
      __m256 v = _mm256_fmadd_ps(acc, vscale, vshift);
      if (act == Act::kReLU) {
        v = _mm256_max_ps(v, _mm256_setzero_ps());
      } else if (act == Act::kReLU6) {
        v = _mm256_min_ps(_mm256_max_ps(v, _mm256_setzero_ps()),
                          _mm256_set1_ps(6.0f));
      }
      _mm256_storeu_ps(out + t, v);
    }
  }
  // Interior tail + right border: dw_pixel_fmaf's bounds checks all pass for
  // interior pixels, so one loop covers both with the identical chain.
  for (; t < n; ++t) {
    const float acc = dw_pixel_fmaf(rows, kh, taps, kw, iw,
                                    (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(std::fmaf(acc, scale, shift), act);
  }
}
#define TBNET_SIMD_HAVE_AVX512 1

/// 6x32 f32 tile for AVX-512F: 12 zmm accumulators (6 rows x 2 sixteen-wide
/// halves) + 2 B vectors + 1 A broadcast — 15 of 32 zmm registers, no
/// spills, and twice the FMA width per k iteration of the 6x16 kernel. Each
/// C element still accumulates through a single FMA chain in k order, so the
/// bits match micro_avx2 exactly (see MicroKernelWideFn).
__attribute__((target("avx512f"))) void micro_avx512_wide(
    int64_t kc, const float* a_panel, const float* b0, int64_t bstride0,
    const float* b1, int64_t bstride1, float* c, int64_t ldc, int mr,
    float alpha, float beta, const TileEpilogue* ep) {
  __m512 a00 = _mm512_setzero_ps(), a01 = _mm512_setzero_ps();
  __m512 a10 = _mm512_setzero_ps(), a11 = _mm512_setzero_ps();
  __m512 a20 = _mm512_setzero_ps(), a21 = _mm512_setzero_ps();
  __m512 a30 = _mm512_setzero_ps(), a31 = _mm512_setzero_ps();
  __m512 a40 = _mm512_setzero_ps(), a41 = _mm512_setzero_ps();
  __m512 a50 = _mm512_setzero_ps(), a51 = _mm512_setzero_ps();
  for (int64_t p = 0; p < kc; ++p) {
    _mm_prefetch(reinterpret_cast<const char*>(b0 + (p + 8) * bstride0),
                 _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(b1 + (p + 8) * bstride1),
                 _MM_HINT_T0);
    const __m512 vb0 = _mm512_loadu_ps(b0 + p * bstride0);
    const __m512 vb1 = _mm512_loadu_ps(b1 + p * bstride1);
    const float* ap = a_panel + p * kMR;
    __m512 a;
    a = _mm512_set1_ps(ap[0]);
    a00 = _mm512_fmadd_ps(a, vb0, a00);
    a01 = _mm512_fmadd_ps(a, vb1, a01);
    a = _mm512_set1_ps(ap[1]);
    a10 = _mm512_fmadd_ps(a, vb0, a10);
    a11 = _mm512_fmadd_ps(a, vb1, a11);
    a = _mm512_set1_ps(ap[2]);
    a20 = _mm512_fmadd_ps(a, vb0, a20);
    a21 = _mm512_fmadd_ps(a, vb1, a21);
    a = _mm512_set1_ps(ap[3]);
    a30 = _mm512_fmadd_ps(a, vb0, a30);
    a31 = _mm512_fmadd_ps(a, vb1, a31);
    a = _mm512_set1_ps(ap[4]);
    a40 = _mm512_fmadd_ps(a, vb0, a40);
    a41 = _mm512_fmadd_ps(a, vb1, a41);
    a = _mm512_set1_ps(ap[5]);
    a50 = _mm512_fmadd_ps(a, vb0, a50);
    a51 = _mm512_fmadd_ps(a, vb1, a51);
  }
  const __m512 acc[kMR][2] = {{a00, a01}, {a10, a11}, {a20, a21},
                              {a30, a31}, {a40, a41}, {a50, a51}};

  if (mr == kMR) {
    const __m512 valpha = _mm512_set1_ps(alpha);
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      __m512 v0 = _mm512_mul_ps(valpha, acc[i][0]);
      __m512 v1 = _mm512_mul_ps(valpha, acc[i][1]);
      if (beta != 0.0f) {
        const __m512 vbeta = _mm512_set1_ps(beta);
        v0 = _mm512_fmadd_ps(vbeta, _mm512_loadu_ps(crow), v0);
        v1 = _mm512_fmadd_ps(vbeta, _mm512_loadu_ps(crow + kNR), v1);
      }
      if (ep != nullptr) {
        if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
          const __m512 rs = _mm512_set1_ps(
              ep->row_scale != nullptr ? ep->row_scale[i] : 1.0f);
          const __m512 rh = _mm512_set1_ps(
              ep->row_shift != nullptr ? ep->row_shift[i] : 0.0f);
          v0 = _mm512_fmadd_ps(rs, v0, rh);
          v1 = _mm512_fmadd_ps(rs, v1, rh);
        }
        if (ep->col_scale != nullptr) {
          v0 = _mm512_mul_ps(v0, _mm512_loadu_ps(ep->col_scale));
          v1 = _mm512_mul_ps(v1, _mm512_loadu_ps(ep->col_scale + kNR));
        }
        if (ep->col_shift != nullptr) {
          v0 = _mm512_add_ps(v0, _mm512_loadu_ps(ep->col_shift));
          v1 = _mm512_add_ps(v1, _mm512_loadu_ps(ep->col_shift + kNR));
        }
        if (ep->act != Act::kNone) {
          const __m512 zero = _mm512_setzero_ps();
          v0 = _mm512_max_ps(v0, zero);
          v1 = _mm512_max_ps(v1, zero);
          if (ep->act == Act::kReLU6) {
            const __m512 six = _mm512_set1_ps(6.0f);
            v0 = _mm512_min_ps(v0, six);
            v1 = _mm512_min_ps(v1, six);
          }
        }
      }
      _mm512_storeu_ps(crow, v0);
      _mm512_storeu_ps(crow + kNR, v1);
    }
    return;
  }

  // Edge rows: spill and finalize scalar-side with std::fmaf, same as the
  // 6x16 kernels' edge path (both columns' halves are always full width).
  alignas(64) float tmp[kMR][2 * kNR];
  for (int i = 0; i < kMR; ++i) {
    _mm512_store_ps(tmp[i], acc[i][0]);
    _mm512_store_ps(tmp[i] + kNR, acc[i][1]);
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float rs = ep != nullptr && ep->row_scale != nullptr
                         ? ep->row_scale[i] : 1.0f;
    const float rh = ep != nullptr && ep->row_shift != nullptr
                         ? ep->row_shift[i] : 0.0f;
    for (int j = 0; j < 2 * kNR; ++j) {
      float v = alpha * tmp[i][j];
      if (beta != 0.0f) v = std::fmaf(beta, crow[j], v);
      if (ep != nullptr) {
        if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
          v = std::fmaf(rs, v, rh);
        }
        if (ep->col_scale != nullptr) v *= ep->col_scale[j];
        if (ep->col_shift != nullptr) v += ep->col_shift[j];
        v = apply_act(v, ep->act);
      }
      crow[j] = v;
    }
  }
}
#endif  // TBNET_SIMD_HAVE_AVX2

// ------------------------------------------------------------------ int8 --
//
// See simd.h for the panel formats and the u7 exactness argument: every tier
// computes the exact integer dot product, and every tier finalizes with
// round-to-nearest int->float conversion plus one fused multiply-add, so the
// C bytes are identical across scalar / maddubs / VNNI.

/// Scalar int8 reference: exact i32 accumulation over k-groups, then the
/// shared (float)acc -> fmaf -> act finalize. This is the kernel
/// TBNET_DETERMINISTIC=1 pins and the bit-parity oracle for the SIMD tiers.
void micro_i8_scalar(int64_t kg, const int8_t* a_panel, const uint8_t* b_panel,
                     float* c, int64_t ldc, int mr, int nr,
                     const QuantEpilogue& ep) {
  int32_t acc[kMR][kNR] = {};
  for (int64_t g = 0; g < kg; ++g) {
    const int8_t* ag = a_panel + g * kMR * kKG;
    const uint8_t* bg = b_panel + g * kNR * kKG;
    for (int i = 0; i < kMR; ++i) {
      const int8_t* aq = ag + i * kKG;
      for (int j = 0; j < kNR; ++j) {
        const uint8_t* bq = bg + j * kKG;
        acc[i][j] += static_cast<int32_t>(aq[0]) * bq[0] +
                     static_cast<int32_t>(aq[1]) * bq[1] +
                     static_cast<int32_t>(aq[2]) * bq[2] +
                     static_cast<int32_t>(aq[3]) * bq[3];
      }
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float s = ep.scale[i];
    const float h = ep.shift[i];
    for (int j = 0; j < nr; ++j) {
      crow[j] = apply_act(std::fmaf(static_cast<float>(acc[i][j]), s, h),
                          ep.act);
    }
  }
}

#if defined(TBNET_SIMD_HAVE_AVX2)

/// Shared finalize for the AVX2-width int8 tiers: the accumulator tile is in
/// memory (one store per kernel call), the dequantize epilogue is applied
/// with cvtepi32_ps + fmadd, which round exactly like the reference's
/// (float) cast + std::fmaf. Kept out of line so each VNNI tier compiles
/// with only its own target attribute.
__attribute__((target("avx2,fma"))) void i8_finish_avx2(
    const int32_t raw[kMR][kNR], float* c, int64_t ldc, int mr, int nr,
    const QuantEpilogue& ep) {
  if (mr == kMR && nr == kNR) {
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      const __m256 s = _mm256_set1_ps(ep.scale[i]);
      const __m256 h = _mm256_set1_ps(ep.shift[i]);
      __m256 v0 = _mm256_fmadd_ps(
          _mm256_cvtepi32_ps(
              _mm256_load_si256(reinterpret_cast<const __m256i*>(raw[i]))),
          s, h);
      __m256 v1 = _mm256_fmadd_ps(
          _mm256_cvtepi32_ps(
              _mm256_load_si256(reinterpret_cast<const __m256i*>(raw[i] + 8))),
          s, h);
      if (ep.act != Act::kNone) {
        const __m256 zero = _mm256_setzero_ps();
        v0 = _mm256_max_ps(v0, zero);
        v1 = _mm256_max_ps(v1, zero);
        if (ep.act == Act::kReLU6) {
          const __m256 six = _mm256_set1_ps(6.0f);
          v0 = _mm256_min_ps(v0, six);
          v1 = _mm256_min_ps(v1, six);
        }
      }
      _mm256_storeu_ps(crow, v0);
      _mm256_storeu_ps(crow + 8, v1);
    }
    return;
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float s = ep.scale[i];
    const float h = ep.shift[i];
    for (int j = 0; j < nr; ++j) {
      crow[j] = apply_act(std::fmaf(static_cast<float>(raw[i][j]), s, h),
                          ep.act);
    }
  }
}

/// AVX2 tier: pmaddubsw (u8 x s8 -> pairwise i16) + pmaddwd(1) widen to i32.
/// The u7 activation range keeps the i16 pair sums below 2^15, so this is
/// exact. One B half-vector is processed at a time: 12 accumulators + B +
/// broadcast + ones + the maddubs temporary is exactly the 16-register ymm
/// file.
__attribute__((target("avx2,fma"))) void micro_i8_avx2(
    int64_t kg, const int8_t* a_panel, const uint8_t* b_panel, float* c,
    int64_t ldc, int mr, int nr, const QuantEpilogue& ep) {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i a00 = _mm256_setzero_si256(), a01 = _mm256_setzero_si256();
  __m256i a10 = _mm256_setzero_si256(), a11 = _mm256_setzero_si256();
  __m256i a20 = _mm256_setzero_si256(), a21 = _mm256_setzero_si256();
  __m256i a30 = _mm256_setzero_si256(), a31 = _mm256_setzero_si256();
  __m256i a40 = _mm256_setzero_si256(), a41 = _mm256_setzero_si256();
  __m256i a50 = _mm256_setzero_si256(), a51 = _mm256_setzero_si256();
  for (int64_t g = 0; g < kg; ++g) {
    const int8_t* ag = a_panel + g * kMR * kKG;
    int32_t q[kMR];
    std::memcpy(q, ag, sizeof(q));
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG));
    a00 = _mm256_add_epi32(
        a00, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[0])), ones));
    a10 = _mm256_add_epi32(
        a10, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[1])), ones));
    a20 = _mm256_add_epi32(
        a20, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[2])), ones));
    a30 = _mm256_add_epi32(
        a30, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[3])), ones));
    a40 = _mm256_add_epi32(
        a40, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[4])), ones));
    a50 = _mm256_add_epi32(
        a50, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b0, _mm256_set1_epi32(q[5])), ones));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG + 32));
    a01 = _mm256_add_epi32(
        a01, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[0])), ones));
    a11 = _mm256_add_epi32(
        a11, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[1])), ones));
    a21 = _mm256_add_epi32(
        a21, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[2])), ones));
    a31 = _mm256_add_epi32(
        a31, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[3])), ones));
    a41 = _mm256_add_epi32(
        a41, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[4])), ones));
    a51 = _mm256_add_epi32(
        a51, _mm256_madd_epi16(
                 _mm256_maddubs_epi16(b1, _mm256_set1_epi32(q[5])), ones));
  }
  alignas(32) int32_t raw[kMR][kNR];
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0]), a00);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0] + 8), a01);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1]), a10);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1] + 8), a11);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2]), a20);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2] + 8), a21);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3]), a30);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3] + 8), a31);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4]), a40);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4] + 8), a41);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5]), a50);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5] + 8), a51);
  i8_finish_avx2(raw, c, ldc, mr, nr, ep);
}

#if defined(__clang__) || (defined(__GNUC__) && __GNUC__ >= 11)
#define TBNET_SIMD_HAVE_VNNI 1

/// AVX-VNNI tier (256-bit dpbusd on cores without AVX-512): one instruction
/// replaces the maddubs/madd/add triple. Same exact integer result.
__attribute__((target("avxvnni,avx2,fma"))) void micro_i8_avxvnni(
    int64_t kg, const int8_t* a_panel, const uint8_t* b_panel, float* c,
    int64_t ldc, int mr, int nr, const QuantEpilogue& ep) {
  __m256i a00 = _mm256_setzero_si256(), a01 = _mm256_setzero_si256();
  __m256i a10 = _mm256_setzero_si256(), a11 = _mm256_setzero_si256();
  __m256i a20 = _mm256_setzero_si256(), a21 = _mm256_setzero_si256();
  __m256i a30 = _mm256_setzero_si256(), a31 = _mm256_setzero_si256();
  __m256i a40 = _mm256_setzero_si256(), a41 = _mm256_setzero_si256();
  __m256i a50 = _mm256_setzero_si256(), a51 = _mm256_setzero_si256();
  for (int64_t g = 0; g < kg; ++g) {
    const int8_t* ag = a_panel + g * kMR * kKG;
    int32_t q[kMR];
    std::memcpy(q, ag, sizeof(q));
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG + 32));
    __m256i va;
    va = _mm256_set1_epi32(q[0]);
    a00 = _mm256_dpbusd_avx_epi32(a00, b0, va);
    a01 = _mm256_dpbusd_avx_epi32(a01, b1, va);
    va = _mm256_set1_epi32(q[1]);
    a10 = _mm256_dpbusd_avx_epi32(a10, b0, va);
    a11 = _mm256_dpbusd_avx_epi32(a11, b1, va);
    va = _mm256_set1_epi32(q[2]);
    a20 = _mm256_dpbusd_avx_epi32(a20, b0, va);
    a21 = _mm256_dpbusd_avx_epi32(a21, b1, va);
    va = _mm256_set1_epi32(q[3]);
    a30 = _mm256_dpbusd_avx_epi32(a30, b0, va);
    a31 = _mm256_dpbusd_avx_epi32(a31, b1, va);
    va = _mm256_set1_epi32(q[4]);
    a40 = _mm256_dpbusd_avx_epi32(a40, b0, va);
    a41 = _mm256_dpbusd_avx_epi32(a41, b1, va);
    va = _mm256_set1_epi32(q[5]);
    a50 = _mm256_dpbusd_avx_epi32(a50, b0, va);
    a51 = _mm256_dpbusd_avx_epi32(a51, b1, va);
  }
  alignas(32) int32_t raw[kMR][kNR];
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0]), a00);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0] + 8), a01);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1]), a10);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1] + 8), a11);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2]), a20);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2] + 8), a21);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3]), a30);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3] + 8), a31);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4]), a40);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4] + 8), a41);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5]), a50);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5] + 8), a51);
  i8_finish_avx2(raw, c, ldc, mr, nr, ep);
}

/// AVX512-VNNI tier, used at 256-bit width (AVX512VL) so the tile shape and
/// register layout stay identical to the other tiers. Same exact result.
__attribute__((target("avx512vnni,avx512vl,avx2,fma"))) void
micro_i8_avx512vnni(int64_t kg, const int8_t* a_panel, const uint8_t* b_panel,
                    float* c, int64_t ldc, int mr, int nr,
                    const QuantEpilogue& ep) {
  __m256i a00 = _mm256_setzero_si256(), a01 = _mm256_setzero_si256();
  __m256i a10 = _mm256_setzero_si256(), a11 = _mm256_setzero_si256();
  __m256i a20 = _mm256_setzero_si256(), a21 = _mm256_setzero_si256();
  __m256i a30 = _mm256_setzero_si256(), a31 = _mm256_setzero_si256();
  __m256i a40 = _mm256_setzero_si256(), a41 = _mm256_setzero_si256();
  __m256i a50 = _mm256_setzero_si256(), a51 = _mm256_setzero_si256();
  for (int64_t g = 0; g < kg; ++g) {
    const int8_t* ag = a_panel + g * kMR * kKG;
    int32_t q[kMR];
    std::memcpy(q, ag, sizeof(q));
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b_panel + g * kNR * kKG + 32));
    __m256i va;
    va = _mm256_set1_epi32(q[0]);
    a00 = _mm256_dpbusd_epi32(a00, b0, va);
    a01 = _mm256_dpbusd_epi32(a01, b1, va);
    va = _mm256_set1_epi32(q[1]);
    a10 = _mm256_dpbusd_epi32(a10, b0, va);
    a11 = _mm256_dpbusd_epi32(a11, b1, va);
    va = _mm256_set1_epi32(q[2]);
    a20 = _mm256_dpbusd_epi32(a20, b0, va);
    a21 = _mm256_dpbusd_epi32(a21, b1, va);
    va = _mm256_set1_epi32(q[3]);
    a30 = _mm256_dpbusd_epi32(a30, b0, va);
    a31 = _mm256_dpbusd_epi32(a31, b1, va);
    va = _mm256_set1_epi32(q[4]);
    a40 = _mm256_dpbusd_epi32(a40, b0, va);
    a41 = _mm256_dpbusd_epi32(a41, b1, va);
    va = _mm256_set1_epi32(q[5]);
    a50 = _mm256_dpbusd_epi32(a50, b0, va);
    a51 = _mm256_dpbusd_epi32(a51, b1, va);
  }
  alignas(32) int32_t raw[kMR][kNR];
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0]), a00);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[0] + 8), a01);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1]), a10);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[1] + 8), a11);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2]), a20);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[2] + 8), a21);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3]), a30);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[3] + 8), a31);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4]), a40);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[4] + 8), a41);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5]), a50);
  _mm256_store_si256(reinterpret_cast<__m256i*>(raw[5] + 8), a51);
  i8_finish_avx2(raw, c, ldc, mr, nr, ep);
}

#if defined(TBNET_SIMD_HAVE_AVX512)
/// AVX512-VNNI tier at full 512-bit width: one B k-group (kNR * kKG = 64
/// bytes) is exactly one zmm, so each group costs a single load plus six
/// broadcast+dpbusd pairs — half the instruction count of the 256-bit
/// tier for the same 384 MACs. The i32 accumulators hold the exact dot
/// product (u7 contract) and the finalize is the shared i8_finish_avx2,
/// so the C bytes match every other tier.
__attribute__((target("avx512vnni,avx512f,avx2,fma"))) void
micro_i8_avx512vnni_z(int64_t kg, const int8_t* a_panel,
                      const uint8_t* b_panel, float* c, int64_t ldc, int mr,
                      int nr, const QuantEpilogue& ep) {
  __m512i r0 = _mm512_setzero_si512(), r1 = _mm512_setzero_si512();
  __m512i r2 = _mm512_setzero_si512(), r3 = _mm512_setzero_si512();
  __m512i r4 = _mm512_setzero_si512(), r5 = _mm512_setzero_si512();
  for (int64_t g = 0; g < kg; ++g) {
    const int8_t* ag = a_panel + g * kMR * kKG;
    int32_t q[kMR];
    std::memcpy(q, ag, sizeof(q));
    const __m512i b = _mm512_loadu_si512(b_panel + g * kNR * kKG);
    r0 = _mm512_dpbusd_epi32(r0, b, _mm512_set1_epi32(q[0]));
    r1 = _mm512_dpbusd_epi32(r1, b, _mm512_set1_epi32(q[1]));
    r2 = _mm512_dpbusd_epi32(r2, b, _mm512_set1_epi32(q[2]));
    r3 = _mm512_dpbusd_epi32(r3, b, _mm512_set1_epi32(q[3]));
    r4 = _mm512_dpbusd_epi32(r4, b, _mm512_set1_epi32(q[4]));
    r5 = _mm512_dpbusd_epi32(r5, b, _mm512_set1_epi32(q[5]));
  }
  alignas(64) int32_t raw[kMR][kNR];
  _mm512_store_si512(raw[0], r0);
  _mm512_store_si512(raw[1], r1);
  _mm512_store_si512(raw[2], r2);
  _mm512_store_si512(raw[3], r3);
  _mm512_store_si512(raw[4], r4);
  _mm512_store_si512(raw[5], r5);
  i8_finish_avx2(raw, c, ldc, mr, nr, ep);
}
#endif  // TBNET_SIMD_HAVE_AVX512
#endif  // TBNET_SIMD_HAVE_VNNI
#endif  // TBNET_SIMD_HAVE_AVX2

// Grouped-layout activation quantizers: one call fills a full 64-byte B
// panel k-group, grp[j * kKG + t] = quantize_u7(row_t[j]). The SIMD forms
// convert with cvtps2dq (round-to-nearest-even, exactly lrintf under the
// default mode), add the zero point, clamp to [0, 127], and compose the
// byte interleave for free via lane-wise shifts and ORs — lane j's i32
// IS the little-endian 4-byte group entry. Bytes are identical to the
// scalar form for any input that quantizes in (-2^31, 2^31) pre-clamp,
// which calibrated activation scales guarantee by construction.

void quant_group_scalar(const float* r0, const float* r1, const float* r2,
                        const float* r3, uint8_t* grp, float inv_scale,
                        int32_t zero_point) {
  const float* rows[kKG] = {r0, r1, r2, r3};
  for (int j = 0; j < kNR; ++j) {
    for (int t = 0; t < kKG; ++t) {
      grp[j * kKG + t] = quantize_u7(rows[t][j], inv_scale, zero_point);
    }
  }
}

#if defined(TBNET_SIMD_HAVE_AVX2)
__attribute__((target("avx2,fma"))) void quant_group_avx2(
    const float* r0, const float* r1, const float* r2, const float* r3,
    uint8_t* grp, float inv_scale, int32_t zero_point) {
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256i vzp = _mm256_set1_epi32(zero_point);
  const __m256i lo = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(127);
  const float* rows[kKG] = {r0, r1, r2, r3};
  for (int half = 0; half < 2; ++half) {
    __m256i q[kKG];
    for (int t = 0; t < kKG; ++t) {
      const __m256i v = _mm256_cvtps_epi32(
          _mm256_mul_ps(_mm256_loadu_ps(rows[t] + 8 * half), vinv));
      q[t] = _mm256_min_epi32(
          _mm256_max_epi32(_mm256_add_epi32(v, vzp), lo), hi);
    }
    const __m256i packed = _mm256_or_si256(
        _mm256_or_si256(q[0], _mm256_slli_epi32(q[1], 8)),
        _mm256_or_si256(_mm256_slli_epi32(q[2], 16),
                        _mm256_slli_epi32(q[3], 24)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(grp + 32 * half), packed);
  }
}

#if defined(TBNET_SIMD_HAVE_AVX512)
__attribute__((target("avx512f,avx2,fma"))) void quant_group_avx512(
    const float* r0, const float* r1, const float* r2, const float* r3,
    uint8_t* grp, float inv_scale, int32_t zero_point) {
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512i vzp = _mm512_set1_epi32(zero_point);
  const __m512i lo = _mm512_setzero_si512();
  const __m512i hi = _mm512_set1_epi32(127);
  const float* rows[kKG] = {r0, r1, r2, r3};
  __m512i q[kKG];
  for (int t = 0; t < kKG; ++t) {
    const __m512i v =
        _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(rows[t]), vinv));
    q[t] =
        _mm512_min_epi32(_mm512_max_epi32(_mm512_add_epi32(v, vzp), lo), hi);
  }
  const __m512i packed = _mm512_or_si512(
      _mm512_or_si512(q[0], _mm512_slli_epi32(q[1], 8)),
      _mm512_or_si512(_mm512_slli_epi32(q[2], 16),
                      _mm512_slli_epi32(q[3], 24)));
  _mm512_storeu_si512(grp, packed);
}
#endif  // TBNET_SIMD_HAVE_AVX512
#endif  // TBNET_SIMD_HAVE_AVX2

// ------------------------------------------------------------------ NEON --

#if TBNET_SIMD_NEON
#define TBNET_SIMD_HAVE_NEON 1

/// 6x16 as 6 rows x 4 q-registers (24 accumulators; aarch64 has 32).
void micro_neon(int64_t kc, const float* a_panel, const float* b_panel,
                int64_t bstride, float* c, int64_t ldc, int mr, int nr,
                float alpha, float beta, const TileEpilogue* ep) {
  float32x4_t acc[kMR][4];
  for (int i = 0; i < kMR; ++i) {
    for (int q = 0; q < 4; ++q) acc[i][q] = vdupq_n_f32(0.0f);
  }
  for (int64_t p = 0; p < kc; ++p) {
    float32x4_t bq[4];
    for (int q = 0; q < 4; ++q) bq[q] = vld1q_f32(b_panel + p * bstride + 4 * q);
    const float* ap = a_panel + p * kMR;
    for (int i = 0; i < kMR; ++i) {
      const float32x4_t a = vdupq_n_f32(ap[i]);
      for (int q = 0; q < 4; ++q) acc[i][q] = vfmaq_f32(acc[i][q], a, bq[q]);
    }
  }

  if (mr == kMR && nr == kNR) {
    const float32x4_t valpha = vdupq_n_f32(alpha);
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      for (int q = 0; q < 4; ++q) {
        float32x4_t v = vmulq_f32(valpha, acc[i][q]);
        if (beta != 0.0f) {
          v = vfmaq_f32(v, vdupq_n_f32(beta), vld1q_f32(crow + 4 * q));
        }
        if (ep != nullptr) {
          if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
            const float rs =
                ep->row_scale != nullptr ? ep->row_scale[i] : 1.0f;
            const float rh =
                ep->row_shift != nullptr ? ep->row_shift[i] : 0.0f;
            v = vfmaq_f32(vdupq_n_f32(rh), vdupq_n_f32(rs), v);
          }
          if (ep->col_scale != nullptr) {
            v = vmulq_f32(v, vld1q_f32(ep->col_scale + 4 * q));
          }
          if (ep->col_shift != nullptr) {
            v = vaddq_f32(v, vld1q_f32(ep->col_shift + 4 * q));
          }
          if (ep->act != Act::kNone) {
            v = vmaxq_f32(v, vdupq_n_f32(0.0f));
            if (ep->act == Act::kReLU6) v = vminq_f32(v, vdupq_n_f32(6.0f));
          }
        }
        vst1q_f32(crow + 4 * q, v);
      }
    }
    return;
  }

  alignas(16) float tmp[kMR][kNR];
  for (int i = 0; i < kMR; ++i) {
    for (int q = 0; q < 4; ++q) vst1q_f32(tmp[i] + 4 * q, acc[i][q]);
  }
  for (int i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float rs = ep != nullptr && ep->row_scale != nullptr
                         ? ep->row_scale[i] : 1.0f;
    const float rh = ep != nullptr && ep->row_shift != nullptr
                         ? ep->row_shift[i] : 0.0f;
    for (int j = 0; j < nr; ++j) {
      float v = alpha * tmp[i][j];
      if (beta != 0.0f) v = std::fmaf(beta, crow[j], v);
      if (ep != nullptr) {
        if (ep->row_scale != nullptr || ep->row_shift != nullptr) {
          v = std::fmaf(rs, v, rh);
        }
        if (ep->col_scale != nullptr) v *= ep->col_scale[j];
        if (ep->col_shift != nullptr) v += ep->col_shift[j];
        v = apply_act(v, ep->act);
      }
      crow[j] = v;
    }
  }
}

float dot_neon(const float* a, const float* b, int64_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) total = std::fmaf(a[i], b[i], total);
  return total;
}

/// NEON depthwise row kernel: 4 output pixels per q-register, per-lane FMA
/// chain in tap order. Stride 2 uses vld2q deinterleaved loads (reads 8
/// floats for 4 outputs; the range backs off where that would cross the row
/// end). Border pixels use std::fmaf (scalar fmadd on aarch64).
void dw_row_neon(const float* const* rows, int64_t kh, const float* taps,
                 int64_t kw, int64_t iw, int64_t pad_w, int64_t stride_w,
                 int64_t ox0, int64_t n, float scale, float shift, Act act,
                 float* out) {
  const DwInterior in = dw_interior(kw, iw, pad_w, stride_w, ox0, n);
  const float32x4_t vscale = vdupq_n_f32(scale);
  const float32x4_t vshift = vdupq_n_f32(shift);
  int64_t t = 0;
  for (; t < in.lo; ++t) {
    const float acc = dw_pixel_fmaf(rows, kh, taps, kw, iw,
                                    (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(std::fmaf(acc, scale, shift), act);
  }
  if (stride_w == 1) {
    const int64_t base = ox0 - pad_w;
    for (; t + 4 <= in.hi; t += 4) {
      const int64_t ix = base + t;
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (int64_t ky = 0; ky < kh; ++ky) {
        const float* row = rows[ky];
        if (row == nullptr) continue;
        for (int64_t kx = 0; kx < kw; ++kx) {
          acc = vfmaq_f32(acc, vld1q_f32(row + ix + kx),
                          vdupq_n_f32(taps[ky * kw + kx]));
        }
      }
      float32x4_t v = vfmaq_f32(vshift, acc, vscale);
      if (act == Act::kReLU) {
        v = vmaxq_f32(v, vdupq_n_f32(0.0f));
      } else if (act == Act::kReLU6) {
        v = vminq_f32(vmaxq_f32(v, vdupq_n_f32(0.0f)), vdupq_n_f32(6.0f));
      }
      vst1q_f32(out + t, v);
    }
  } else if (stride_w == 2) {
    for (; t + 4 <= in.hi; t += 4) {
      const int64_t ix = (ox0 + t) * 2 - pad_w;
      // vld2q reads index ix + kx + 7; the last one used is +6.
      if (ix + (kw - 1) + 7 >= iw) break;
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (int64_t ky = 0; ky < kh; ++ky) {
        const float* row = rows[ky];
        if (row == nullptr) continue;
        for (int64_t kx = 0; kx < kw; ++kx) {
          acc = vfmaq_f32(acc, vld2q_f32(row + ix + kx).val[0],
                          vdupq_n_f32(taps[ky * kw + kx]));
        }
      }
      float32x4_t v = vfmaq_f32(vshift, acc, vscale);
      if (act == Act::kReLU) {
        v = vmaxq_f32(v, vdupq_n_f32(0.0f));
      } else if (act == Act::kReLU6) {
        v = vminq_f32(vmaxq_f32(v, vdupq_n_f32(0.0f)), vdupq_n_f32(6.0f));
      }
      vst1q_f32(out + t, v);
    }
  }
  for (; t < n; ++t) {
    const float acc = dw_pixel_fmaf(rows, kh, taps, kw, iw,
                                    (ox0 + t) * stride_w - pad_w);
    out[t] = apply_act(std::fmaf(acc, scale, shift), act);
  }
}
#endif  // TBNET_SIMD_NEON

// -------------------------------------------------------------- dispatch --

struct Kernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  MicroKernelFn micro = &micro_scalar;
  MicroKernelFn micro1 = &micro_scalar;
  MicroKernelWideFn wide = nullptr;
  MicroKernelI8Fn micro_i8 = &micro_i8_scalar;
  QuantizeU7GroupFn quant_group = &quant_group_scalar;
  const char* int8_name = "scalar";
  DwRowKernelFn dw_row = &dw_row_scalar;
  float (*dot)(const float*, const float*, int64_t) = &dot_scalar;
};

Kernels select_kernels() {
  Kernels k;
#if defined(TBNET_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    k.isa = Isa::kAvx2;
    k.name = "avx2-fma";
    k.micro = &micro_avx2;
    k.micro1 = &micro_avx2_mr1;
    k.dw_row = &dw_row_avx2;
    k.dot = &dot_avx2;
#if defined(TBNET_SIMD_HAVE_AVX512)
    // The 6x16 kernels stay the AVX2 forms (bit-compatible by contract);
    // AVX-512F only adds the double-width tile the drivers prefer for full
    // panel pairs.
    if (__builtin_cpu_supports("avx512f")) {
      k.isa = Isa::kAvx512;
      k.name = "avx512f-fma";
      k.wide = &micro_avx512_wide;
    }
#endif
    // Int8 ladder, probed independently of the f32 tiers: every tier is
    // exact (see simd.h), so the choice is pure throughput.
    k.micro_i8 = &micro_i8_avx2;
    k.quant_group = &quant_group_avx2;
    k.int8_name = "avx2-maddubs";
#if defined(TBNET_SIMD_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f")) {
      k.quant_group = &quant_group_avx512;
    }
#endif
#if defined(TBNET_SIMD_HAVE_VNNI)
    if (__builtin_cpu_supports("avxvnni")) {
      k.micro_i8 = &micro_i8_avxvnni;
      k.int8_name = "avx-vnni";
    }
    if (__builtin_cpu_supports("avx512vnni") &&
        __builtin_cpu_supports("avx512vl")) {
      k.micro_i8 = &micro_i8_avx512vnni;
      k.int8_name = "avx512-vnni";
    }
#if defined(TBNET_SIMD_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512vnni")) {
      k.micro_i8 = &micro_i8_avx512vnni_z;
      k.int8_name = "avx512-vnni";
    }
#endif
#endif
    return k;
  }
#endif
#if defined(TBNET_SIMD_HAVE_NEON)
  k.isa = Isa::kNeon;
  k.name = "neon";
  k.micro = &micro_neon;
  k.micro1 = &micro_neon;
  k.dw_row = &dw_row_neon;
  k.dot = &dot_neon;
  return k;
#endif
  return k;
}

const Kernels& kernels() {
  static const Kernels k = select_kernels();
  return k;
}

}  // namespace

Isa active_isa() { return kernels().isa; }
const char* isa_name() { return kernels().name; }
const char* int8_isa_name() {
  return fast_kernels_enabled() ? kernels().int8_name : "scalar";
}
MicroKernelFn micro_kernel() { return kernels().micro; }
MicroKernelFn micro_kernel_mr1() { return kernels().micro1; }
MicroKernelWideFn micro_kernel_wide() {
  return fast_kernels_enabled() ? kernels().wide : nullptr;
}
MicroKernelI8Fn micro_kernel_i8() {
  return fast_kernels_enabled() ? kernels().micro_i8 : &micro_i8_scalar;
}
MicroKernelI8Fn micro_kernel_i8_reference() { return &micro_i8_scalar; }
QuantizeU7GroupFn quantize_u7_group() {
  return fast_kernels_enabled() ? kernels().quant_group : &quant_group_scalar;
}
DwRowKernelFn dw_row_kernel() { return kernels().dw_row; }

void require_known_act(Act act) {
  if (!act_known(act)) {
    throw std::invalid_argument(
        "tbnet::simd: unknown Act value " +
        std::to_string(static_cast<int>(act)) +
        " (kernels apply activations by explicit dispatch; extend apply_act "
        "before routing new values into an epilogue)");
  }
}

float dot(const float* a, const float* b, int64_t n) {
  return kernels().dot(a, b, n);
}

bool fast_kernels_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("TBNET_DETERMINISTIC");
    return env == nullptr || std::strcmp(env, "1") != 0;
  }();
  return enabled;
}

}  // namespace tbnet::simd
