#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/threadpool.h"

namespace tbnet {
namespace {

// Block sizes tuned for L1-resident inner tiles on typical x86/ARM cores.
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 512;

inline void scale_row(float* c, int64_t n, float beta) {
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<size_t>(n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (int64_t j = 0; j < n; ++j) c[j] *= beta;
  }
}

}  // namespace

void gemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  ThreadPool::global().parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) scale_row(c + i * n, n, beta);
    for (int64_t kk = 0; kk < k; kk += kBlockK) {
      const int64_t k_end = std::min(k, kk + kBlockK);
      for (int64_t jj = 0; jj < n; jj += kBlockN) {
        const int64_t j_end = std::min(n, jj + kBlockN);
        for (int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          for (int64_t p = kk; p < k_end; ++p) {
            const float av = alpha * a[i * k + p];
            if (av == 0.0f) continue;
            const float* brow = b + p * n;
            for (int64_t j = jj; j < j_end; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void gemm_nt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  ThreadPool::global().parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
      }
    }
  });
}

void gemm_tn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  // A is [k, m]; walk k in the outer loop for sequential access to both
  // inputs, parallelizing over output rows (columns of A).
  ThreadPool::global().parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) scale_row(c + i * n, n, beta);
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = i0; i < i1; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemv(int64_t m, int64_t n, float alpha, const float* a, const float* x,
          float beta, float* y) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float acc = 0.0f;
    for (int64_t j = 0; j < n; ++j) acc += arow[j] * x[j];
    y[i] = alpha * acc + (beta == 0.0f ? 0.0f : beta * y[i]);
  }
}

}  // namespace tbnet
