#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/simd.h"
#include "tensor/threadpool.h"

namespace tbnet {
namespace {

// Block sizes tuned for L1-resident inner tiles on typical x86/ARM cores
// (scalar reference kernels; the packed driver carries its own kBlockK).
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 512;

inline void scale_row(float* c, int64_t n, float beta) {
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<size_t>(n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (int64_t j = 0; j < n; ++j) c[j] *= beta;
  }
}

void gemm_nn_ref_on(ThreadPool& pool, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c) {
  pool.parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) scale_row(c + i * n, n, beta);
    for (int64_t kk = 0; kk < k; kk += kBlockK) {
      const int64_t k_end = std::min(k, kk + kBlockK);
      for (int64_t jj = 0; jj < n; jj += kBlockN) {
        const int64_t j_end = std::min(n, jj + kBlockN);
        // Register-block 2 (rows of C) x 4 (k-taps): each C row is streamed
        // once per 4 taps instead of once per tap, and each B row feeds two
        // C rows per load (C and B traffic are the bottleneck for the
        // small-m GEMMs im2col convolution produces). The per-element
        // accumulation order over p is unchanged, so results stay
        // bit-identical across shapes and blockings.
        int64_t i = i0;
        for (; i + 2 <= i1; i += 2) {
          float* crow0 = c + i * n;
          float* crow1 = crow0 + n;
          const float* arow0 = a + i * k;
          const float* arow1 = arow0 + k;
          int64_t p = kk;
          for (; p + 4 <= k_end; p += 4) {
            const float a00 = alpha * arow0[p], a01 = alpha * arow0[p + 1];
            const float a02 = alpha * arow0[p + 2], a03 = alpha * arow0[p + 3];
            const float a10 = alpha * arow1[p], a11 = alpha * arow1[p + 1];
            const float a12 = alpha * arow1[p + 2], a13 = alpha * arow1[p + 3];
            const float* b0 = b + p * n;
            const float* b1 = b0 + n;
            const float* b2 = b1 + n;
            const float* b3 = b2 + n;
            for (int64_t j = jj; j < j_end; ++j) {
              const float b0j = b0[j], b1j = b1[j], b2j = b2[j], b3j = b3[j];
              float v0 = crow0[j];
              v0 += a00 * b0j;
              v0 += a01 * b1j;
              v0 += a02 * b2j;
              v0 += a03 * b3j;
              crow0[j] = v0;
              float v1 = crow1[j];
              v1 += a10 * b0j;
              v1 += a11 * b1j;
              v1 += a12 * b2j;
              v1 += a13 * b3j;
              crow1[j] = v1;
            }
          }
          for (; p < k_end; ++p) {
            const float av0 = alpha * arow0[p];
            const float av1 = alpha * arow1[p];
            const float* brow = b + p * n;
            for (int64_t j = jj; j < j_end; ++j) {
              crow0[j] += av0 * brow[j];
              crow1[j] += av1 * brow[j];
            }
          }
        }
        for (; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          int64_t p = kk;
          for (; p + 4 <= k_end; p += 4) {
            const float av0 = alpha * arow[p];
            const float av1 = alpha * arow[p + 1];
            const float av2 = alpha * arow[p + 2];
            const float av3 = alpha * arow[p + 3];
            const float* b0 = b + p * n;
            const float* b1 = b0 + n;
            const float* b2 = b1 + n;
            const float* b3 = b2 + n;
            for (int64_t j = jj; j < j_end; ++j) {
              float v = crow[j];
              v += av0 * b0[j];
              v += av1 * b1[j];
              v += av2 * b2[j];
              v += av3 * b3[j];
              crow[j] = v;
            }
          }
          // No av == 0 skip here: the blocked paths above always perform
          // the multiply-add, and skipping only in this tail would make a
          // row's bits depend on which path the pool partitioning gave it.
          for (; p < k_end; ++p) {
            const float av = alpha * arow[p];
            const float* brow = b + p * n;
            for (int64_t j = jj; j < j_end; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void gemm_nt_ref_on(ThreadPool& pool, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, const float* b, float beta,
                    float* c) {
  pool.parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
      }
    }
  });
}

void gemm_tn_on(ThreadPool& pool, int64_t m, int64_t n, int64_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  // A is [k, m]; walk k in the outer loop for sequential access to both
  // inputs, parallelizing over output rows (columns of A).
  pool.parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) scale_row(c + i * n, n, beta);
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = i0; i < i1; ++i) {
        const float av = alpha * arow[i];
        if (av == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

/// Packed fast path shared by nn/nt: packs the A operand into ctx scratch
/// and runs the microkernel driver. Row-major B is consumed in place;
/// transposed B (gemm_nt) must be packed.
void gemm_packed(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
                 float alpha, const float* a, const float* b,
                 bool b_is_transposed, float beta, float* c,
                 const GemmEpilogue& ep) {
  if (n < simd::kNR) {
    // Narrower than one vector tile (e.g. a 10-class logit head): the tile
    // kernel would compute mostly padding. The choice depends only on n, so
    // per-row bits remain independent of the batch size.
    if (b_is_transposed) {
      // Both operands stream contiguously per output element, so one SIMD
      // dot per element is the roofline path for these shapes — this is
      // what a batch-1 dense head runs (n = classes, B^T rows = weight
      // rows). Each C element is computed independently; bits do not depend
      // on m or the pool partitioning.
      ctx.parallel_for(m, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (int64_t j = 0; j < n; ++j) {
            const float acc = simd::dot(arow, b + j * k, k);
            crow[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * crow[j]);
          }
        }
      });
    } else {
      gemm_nn_ref_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
    }
    apply_epilogue_reference(m, n, c, n, ep);
    return;
  }
  ArenaScope scope(ctx.arena());
  float* ap = ctx.arena().alloc(packdetail::packed_a_floats(m, k));
  const int width = ctx.intra_op_width();
  packdetail::pack_a_rowmajor(ctx.pool(), m, k, a, k, ap, width);
  if (b_is_transposed) {
    float* bp = ctx.arena().alloc(packdetail::packed_b_floats(k, n));
    packdetail::pack_b_from_bt(ctx.pool(), n, k, b, k, bp, width);
    packdetail::run_packed(ctx.pool(), m, n, k, alpha, ap, bp, beta, c, n, ep,
                           width);
  } else {
    packdetail::run_packed_b_rowmajor(ctx.pool(), m, n, k, alpha, ap, b, n,
                                      beta, c, n, ep, width);
  }
}

}  // namespace

void apply_epilogue_reference(int64_t m, int64_t n, float* c, int64_t ldc,
                              const GemmEpilogue& ep) {
  if (ep.empty()) return;
  simd::require_known_act(ep.act);
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float rs = ep.row_scale != nullptr ? ep.row_scale[i] : 1.0f;
    const float rh = ep.row_shift != nullptr ? ep.row_shift[i] : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float v = crow[j];
      if (ep.row_scale != nullptr || ep.row_shift != nullptr) v = v * rs + rh;
      if (ep.col_scale != nullptr) v *= ep.col_scale[j];
      if (ep.col_shift != nullptr) v += ep.col_shift[j];
      crow[j] = simd::apply_act(v, ep.act);
    }
  }
}

void gemm_nn_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c) {
  gemm_nn_ref_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
}

void gemm_nt_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c) {
  gemm_nt_ref_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
}

void gemm_nn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta, float* c,
             const GemmEpilogue& ep) {
  if (!simd::fast_kernels_enabled()) {
    gemm_nn_ref_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
    apply_epilogue_reference(m, n, c, n, ep);
    return;
  }
  gemm_packed(ctx, m, n, k, alpha, a, b, /*b_is_transposed=*/false, beta, c,
              ep);
}

void gemm_nn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  gemm_nn(ctx, m, n, k, alpha, a, b, beta, c, GemmEpilogue{});
}

void gemm_nn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  gemm_nn(default_execution_context(), m, n, k, alpha, a, b, beta, c);
}

void gemm_nt(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta, float* c,
             const GemmEpilogue& ep) {
  if (!simd::fast_kernels_enabled()) {
    gemm_nt_ref_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
    apply_epilogue_reference(m, n, c, n, ep);
    return;
  }
  gemm_packed(ctx, m, n, k, alpha, a, b, /*b_is_transposed=*/true, beta, c,
              ep);
}

void gemm_nt(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  gemm_nt(ctx, m, n, k, alpha, a, b, beta, c, GemmEpilogue{});
}

void gemm_nt(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  gemm_nt(default_execution_context(), m, n, k, alpha, a, b, beta, c);
}

void gemm_tn_reference(const ExecutionContext& ctx, int64_t m, int64_t n,
                       int64_t k, float alpha, const float* a, const float* b,
                       float beta, float* c) {
  gemm_tn_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
}

void gemm_tn(const ExecutionContext& ctx, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, const float* b, float beta,
             float* c) {
  if (!simd::fast_kernels_enabled() || n < simd::kNR) {
    gemm_tn_on(ctx.pool(), m, n, k, alpha, a, b, beta, c);
    return;
  }
  // Packed path for the backward GEMMs (dcols = W^T dy, dW = dy^T x): pack
  // the transposed A into microkernel panels — byte-identical panels to the
  // un-transposed pack, so the result matches gemm_nn on A bitwise — and
  // consume the row-major B in place. The k axis (output channels for
  // dcols, batch*spatial for weight gradients) is sliced by the driver's
  // kBlockK blocking; beta accumulation chains across slices in k order, so
  // the determinism contract (k-ordered per-element accumulation) holds.
  ArenaScope scope(ctx.arena());
  float* ap = ctx.arena().alloc(packdetail::packed_a_floats(m, k));
  packdetail::pack_a_from_at(ctx.pool(), m, k, a, m, ap,
                             ctx.intra_op_width());
  packdetail::run_packed_b_rowmajor(ctx.pool(), m, n, k, alpha, ap, b, n, beta,
                                    c, n, GemmEpilogue{},
                                    ctx.intra_op_width());
}

void gemm_tn(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  gemm_tn(default_execution_context(), m, n, k, alpha, a, b, beta, c);
}

void gemv_reference(int64_t m, int64_t n, float alpha, const float* a,
                    const float* x, float beta, float* y) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * n;
    float acc = 0.0f;
    for (int64_t j = 0; j < n; ++j) acc += arow[j] * x[j];
    y[i] = alpha * acc + (beta == 0.0f ? 0.0f : beta * y[i]);
  }
}

void gemv(const ExecutionContext& ctx, int64_t m, int64_t n, float alpha,
          const float* a, const float* x, float beta, float* y) {
  if (!simd::fast_kernels_enabled()) {
    gemv_reference(m, n, alpha, a, x, beta, y);
    return;
  }
  ctx.parallel_for(m, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float acc = simd::dot(a + i * n, x, n);
      y[i] = alpha * acc + (beta == 0.0f ? 0.0f : beta * y[i]);
    }
  });
}

void gemv(int64_t m, int64_t n, float alpha, const float* a, const float* x,
          float beta, float* y) {
  gemv(default_execution_context(), m, n, alpha, a, x, beta, y);
}

}  // namespace tbnet
