#pragma once
// Tensor: dense row-major float32 array with value semantics.
//
// tbnet trains small CNNs on CPU; a single dtype (float) and owning
// std::vector storage keep the type simple, copyable (used heavily by the
// pruning snapshot / rollback machinery) and free of aliasing bugs. All
// heavy math lives in free functions (gemm.h, im2col.h, ops.h).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/rng.h"
#include "tensor/shape.h"

namespace tbnet {

/// Dense row-major float tensor. Copying copies the data (value semantics).
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data);

  /// ---- factories -------------------------------------------------------
  static Tensor zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor full(const Shape& shape, float value);
  static Tensor ones(const Shape& shape) { return full(shape, 1.0f); }
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(const Shape& shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand(const Shape& shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f);
  /// 1-D tensor from explicit values.
  static Tensor from(std::vector<float> values);

  /// ---- structure -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  int64_t dim(int i) const { return shape_.dim(i); }
  bool empty() const { return data_.empty(); }

  /// Reinterpret as a different shape with the same element count.
  Tensor reshaped(const Shape& shape) const;

  /// ---- element access ---------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return std::span<float>(data_); }
  std::span<const float> flat() const { return std::span<const float>(data_); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Multi-index access (rank must match; debug-checked).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// ---- in-place helpers --------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this += alpha * other.
  void axpy_(float alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(float alpha);

  /// ---- reductions --------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Sum of absolute values (used by the BN L1 sparsity penalty).
  float abs_sum() const;
  /// Index of the maximum element (first on ties).
  int64_t argmax() const;

 private:
  int64_t flat_index(std::initializer_list<int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

/// True iff same shape and all |a-b| <= atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace tbnet
