#pragma once
// CRC32C (Castagnoli polynomial, reflected form) — the integrity checksum
// used by the v4 model-image format (nn/serialize) and the TEE transfer
// frames (tee/optee_api). Software table implementation: portable, no
// SSE4.2 dependency, and fast enough for deploy-time verification of
// kilobyte-to-megabyte model images.

#include <array>
#include <cstddef>
#include <cstdint>

namespace tbnet {
namespace detail {

inline const std::array<uint32_t, 256>& crc32c_table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC32C of `len` bytes. Chainable: pass a previous result as `seed` to
/// extend the checksum over a second buffer.
inline uint32_t crc32c(const void* data, size_t len, uint32_t seed = 0) {
  const auto& table = detail::crc32c_table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~seed;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace tbnet
