// serving_supervision — self-healing serving in one terminal.
//
// Two dispatch workers serve a two-branch model, each with its own secure
// world and TEE session. Mid-demo, worker 1's TEE "dies": every boundary
// crossing raises a permanent fault. Watch the supervision layer do its
// job — the circuit breaker quarantines the worker, its in-flight riders
// are re-queued to the healthy sibling (no request is lost), the
// supervisor retries DeployedTBNet::reopen under exponential backoff until
// the fault clears, and the recovered worker is re-admitted. Every phase
// prints the full health snapshot: per-worker state plus the supervision
// counters (quarantines / recoveries / requeued / canary failures).
//
// Run: ./build/examples/serving_supervision

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "runtime/deployed.h"
#include "runtime/measurements.h"
#include "runtime/server.h"
#include "tee/optee_api.h"
#include "tensor/rng.h"

using namespace tbnet;

namespace {

void print_health(const char* phase, const runtime::ServingStats& s) {
  std::printf("\n[%s]\n", phase);
  for (size_t w = 0; w < s.per_worker.size(); ++w) {
    const runtime::WorkerStats& ws = s.per_worker[w];
    std::printf("  worker %zu: %-11s (batches %lld, quarantines %lld, "
                "recoveries %lld)\n",
                w, runtime::worker_health_name(ws.health),
                static_cast<long long>(ws.batches),
                static_cast<long long>(ws.quarantines),
                static_cast<long long>(ws.recoveries));
  }
  std::printf("  served %lld | engine_errors %lld | integrity_errors %lld\n",
              static_cast<long long>(s.requests),
              static_cast<long long>(s.engine_errors),
              static_cast<long long>(s.integrity_errors));
  std::printf("  quarantines %lld | recoveries %lld | requeued %lld | "
              "canary_failures %lld | watchdog_trips %lld\n",
              static_cast<long long>(s.quarantines),
              static_cast<long long>(s.recoveries),
              static_cast<long long>(s.requeued),
              static_cast<long long>(s.canary_failures),
              static_cast<long long>(s.watchdog_trips));
}

int64_t submit_burst(runtime::InferenceServer& server, int n, Rng& rng) {
  std::vector<std::future<runtime::InferenceResult>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(server.submit(Tensor::randn(Shape{3, 32, 32}, rng)));
  }
  int64_t ok = 0;
  for (auto& f : futures) {
    if (f.get().ok()) ++ok;
  }
  return ok;
}

}  // namespace

int main() {
  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.25;
  cfg.seed = 7;

  std::printf("deploying %s to two independent workers...\n",
              cfg.name().c_str());
  const nn::Sequential victim = models::build_victim(cfg);
  const core::TwoBranchModel tb = models::build_two_branch(victim, cfg);

  std::vector<std::unique_ptr<tee::SecureWorld>> worlds;
  std::vector<std::unique_ptr<tee::TeeContext>> ctxs;
  std::vector<std::unique_ptr<runtime::DeployedTBNet>> engines;
  std::vector<runtime::InferenceServer::BatchFn> fns;
  std::vector<runtime::InferenceServer::RecoverFn> recover;
  Rng rng(51);
  const Tensor canary = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  for (int w = 0; w < 2; ++w) {
    worlds.push_back(std::make_unique<tee::SecureWorld>());
    ctxs.push_back(std::make_unique<tee::TeeContext>(*worlds.back()));
    engines.push_back(std::make_unique<runtime::DeployedTBNet>(
        tb, *ctxs.back(), "tbnet-demo-" + std::to_string(w)));
    runtime::DeployedTBNet* eng = engines.back().get();
    fns.push_back([eng](const Tensor& nchw) { return eng->infer_batch(nchw); });
    recover.push_back([eng, canary] { eng->reopen(canary); });
  }

  runtime::InferenceServer::Config scfg;
  scfg.max_batch = 8;
  scfg.max_queue_delay = std::chrono::microseconds(500);
  scfg.breaker_threshold = 1;
  scfg.recovery_backoff = std::chrono::milliseconds(5);
  scfg.recovery_max_backoff = std::chrono::milliseconds(80);
  runtime::InferenceServer server(std::move(fns), std::move(recover), scfg);

  int64_t ok = submit_burst(server, 32, rng);
  std::printf("warm traffic: %lld/32 Ok\n", static_cast<long long>(ok));
  print_health("both workers healthy", server.stats());

  // ---- kill worker 1's TEE ------------------------------------------------
  std::printf("\n>> killing worker 1: permanent fault on every TEE "
              "crossing (session loss)\n");
  ctxs[1]->faults().set_rate(1.0, /*permanent_fraction=*/1.0);
  ok = submit_burst(server, 32, rng);
  std::printf("traffic during the kill: %lld/32 Ok — riders of the dying "
              "worker were re-queued, not failed\n",
              static_cast<long long>(ok));
  while (server.stats().canary_failures < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  print_health("worker 1 quarantined, recovery failing (fault persists)",
               server.stats());

  // ---- the operator fixes the device --------------------------------------
  std::printf("\n>> clearing the fault: the next reopen() re-deploys the "
              "TA (checksums re-verified) and canary-infers\n");
  ctxs[1]->faults().set_rate(0.0);
  while (server.stats().recoveries < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ok = submit_burst(server, 32, rng);
  std::printf("traffic after recovery: %lld/32 Ok on two workers again\n",
              static_cast<long long>(ok));
  server.drain();
  print_health("worker 1 recovered and re-admitted", server.stats());
  std::printf("\nreopens on worker 1's engine: %lld\n",
              static_cast<long long>(engines[1]->reopens()));
  return 0;
}
