// model_protection_pipeline — a verbose, step-by-step walkthrough of the six
// TBNet steps (paper Fig. 1), printing what changes at every stage. This is
// the example to read next to §3 of the paper.
//
// Run: ./build/examples/model_protection_pipeline [vgg|resnet]

#include <cstdio>
#include <cstring>

#include "attack/attacks.h"
#include "core/knowledge_transfer.h"
#include "core/pruner.h"
#include "core/rollback.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"

using namespace tbnet;

namespace {

void banner(const char* text) {
  std::printf("\n---- %s\n", text);
}

int64_t total_channels(core::TwoBranchModel& model,
                       const std::vector<core::PrunePoint>& points) {
  int64_t n = 0;
  for (const auto& p : points) {
    n += core::resolve_point_lenient(model, p).bn_secure->channels();
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bool use_resnet = (argc > 1 && std::strcmp(argv[1], "resnet") == 0);

  models::ModelConfig cfg;
  cfg.family = use_resnet ? models::Family::kResNet : models::Family::kVgg;
  cfg.depth = use_resnet ? 20 : 11;
  cfg.classes = 10;
  cfg.width_mult = use_resnet ? 0.5 : 0.125;
  cfg.seed = 5;
  auto [train, test] = data::SyntheticCifar::make_split(10, 400, 200, 55);

  std::printf("TBNet six-step walkthrough on %s\n", cfg.name().c_str());

  banner("step 0: the victim (the model IP we must protect)");
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 6;
  vt.batch_size = 64;
  vt.lr = 0.1;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);
  const double victim_acc = models::evaluate(victim, test);
  std::printf("victim: %.2f%% accuracy, %.1f KiB of parameters\n",
              100 * victim_acc, victim.param_bytes() / 1024.0);

  banner("step 1: two-branch initialization");
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);
  std::printf("M_R := victim%s (REE, exposed); M_T := same architecture, fresh"
              " weights (TEE)\n",
              use_resnet ? "'s main branch (skips dropped)" : "");
  std::printf("fused accuracy before any training: %.2f%% | M_R alone: %.2f%%\n",
              100 * core::evaluate_fused(model, test),
              100 * core::evaluate_exposed_only(model, test));

  banner("step 2: knowledge transfer (Eq. 1: CE + lambda*L1 on BN gammas)");
  core::TransferConfig tc;
  tc.epochs = 6;
  tc.lambda = 1e-4;
  tc.augment = false;
  tc.log_every = 2;
  const auto tr = core::knowledge_transfer(model, points, train, test, tc);
  std::printf("fused: %.2f%% | M_R alone: %.2f%% (knowledge now split)\n",
              100 * tr.final_acc,
              100 * core::evaluate_exposed_only(model, test));

  banner("steps 3-5: iterative two-branch pruning (Alg. 1)");
  std::printf("prunable channels before: %lld, secure branch %.1f KiB\n",
              static_cast<long long>(total_channels(model, points)),
              model.secure_param_bytes() / 1024.0);
  core::PruneConfig pcfg;
  pcfg.ratio = 0.10;
  pcfg.acc_drop_budget = 0.06;
  pcfg.max_iterations = 4;
  pcfg.finetune.epochs = 1;
  pcfg.finetune.augment = false;
  pcfg.log_every = 1;
  core::TwoBranchPruner pruner(pcfg);
  core::PruneResult pr = pruner.run(model, points, train, test);
  std::printf("accepted %d iterations; channels now %lld, secure branch %.1f KiB,"
              " fused %.2f%%\n",
              pr.accepted_count,
              static_cast<long long>(total_channels(model, points)),
              model.secure_param_bytes() / 1024.0, 100 * pr.final_acc);

  banner("step 6: rollback finalization (arch(M_R) != arch(M_T))");
  if (pr.any_accepted) {
    const auto rb = core::rollback_finalize(
        model, std::move(pr.pre_last_accepted), points, pr.last_keep);
    std::printf("M_R rolled back: %.1f -> %.1f KiB; %zu fusion stages now use"
                " channel-map gather\n",
                rb.exposed_bytes_before / 1024.0,
                rb.exposed_bytes_after / 1024.0, rb.remapped_stages.size());
    std::printf("architectural divergence: %d of %zu prunable groups\n",
                core::architectural_divergence(model, points), points.size());
    // Recovery fine-tune of M_T only (M_R stays exactly as the attacker
    // will find it in REE memory).
    core::TransferConfig rec;
    rec.epochs = 2;
    rec.lambda = 0.0;
    rec.freeze_exposed = true;
    rec.augment = false;
    core::knowledge_transfer(model, points, train, test, rec);
  } else {
    std::printf("(no accepted pruning iteration -> nothing to roll back)\n");
  }

  banner("result");
  const double final_acc = core::evaluate_fused(model, test);
  const double attack_acc = attack::direct_use_accuracy(model, test);
  std::printf("victim %.2f%% | TBNet %.2f%% | attacker (direct use of M_R)"
              " %.2f%% | gap %.2f%%\n",
              100 * victim_acc, 100 * final_acc, 100 * attack_acc,
              100 * (final_acc - attack_acc));
  std::printf("TEE model: %.1f KiB (victim was %.1f KiB)\n",
              model.secure_param_bytes() / 1024.0,
              victim.param_bytes() / 1024.0);
  return 0;
}
