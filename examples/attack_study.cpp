// attack_study — the evaluation from the adversary's chair.
//
// Builds one protected deployment, then runs the full attacker toolkit
// against it and against a DarkneTZ-style partition baseline:
//   * direct use of the lifted M_R,
//   * fine-tuning the lifted M_R with 1%..100% of the training data,
//   * the substitute-layer attack (only possible against the partition
//     baseline, whose TEE inputs/outputs are observable).
//
// Run: ./build/examples/attack_study

#include <cstdio>
#include <string>

#include "attack/attacks.h"
#include "core/pipeline.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "runtime/deployed.h"
#include "tee/optee_api.h"

using namespace tbnet;

int main() {
  auto [train, test] = data::SyntheticCifar::make_split(10, 400, 200, 91);

  models::ModelConfig cfg;
  cfg.family = models::Family::kVgg;
  cfg.depth = 11;
  cfg.classes = 10;
  cfg.width_mult = 0.125;
  cfg.seed = 9;

  std::printf("== setup: victim + TBNet protection ==\n");
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 6;
  vt.batch_size = 64;
  vt.lr = 0.1;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);
  const double victim_acc = models::evaluate(victim, test);

  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  core::PipelineConfig pc;
  pc.transfer.epochs = 6;
  pc.transfer.augment = false;
  pc.prune.max_iterations = 3;
  pc.prune.acc_drop_budget = 0.06;
  pc.prune.finetune.epochs = 1;
  pc.prune.finetune.augment = false;
  pc.recovery.epochs = 2;
  pc.recovery.augment = false;
  const auto report = core::TbnetPipeline(pc).run(
      model, models::prune_points(cfg), train, test);
  std::printf("victim %.2f%% | TBNet %.2f%%\n\n", 100 * victim_acc,
              100 * report.final_acc);

  std::printf("== attack 1: direct use of the lifted M_R ==\n");
  const double direct = attack::direct_use_accuracy(model, test);
  std::printf("stolen accuracy: %.2f%% (gap to TBNet: %.2f%%)\n\n",
              100 * direct, 100 * (report.final_acc - direct));

  std::printf("== attack 2: fine-tuning M_R with partial training data ==\n");
  attack::FineTuneConfig ft;
  ft.train.epochs = 4;
  ft.train.batch_size = 64;
  ft.train.lr = 0.02;
  ft.train.augment = false;
  for (const auto& r : attack::fine_tune_sweep(
           model, train, test, {0.01, 0.25, 1.0}, ft)) {
    std::printf("  %3.0f%% of data -> %.2f%%%s\n", 100 * r.fraction,
                100 * r.accuracy,
                r.accuracy < report.final_acc ? "  (< TBNet)" : "  (!!)");
  }

  std::printf("\n== attack 3: substitute layers vs. a partition baseline ==\n");
  tee::SecureWorld world;
  tee::TeeContext ctx(world);
  runtime::PartitionDeployment partition(victim, victim.size() - 2, ctx);
  attack::SubstituteConfig sc;
  sc.query_budget = 200;
  sc.train.epochs = 10;
  sc.train.batch_size = 64;
  sc.train.lr = 0.02;
  sc.train.augment = false;
  const auto sub =
      attack::substitute_layer_attack(partition, victim, train, test, sc);
  std::printf("partition baseline broken: substitute model reaches %.2f%%"
              " with %d queries (victim %.2f%%)\n",
              100 * sub.accuracy, sub.queries_used, 100 * victim_acc);
  std::printf("the same attack cannot target TBNet: the TEE releases no\n"
              "per-layer outputs, so there are no (input, output) pairs to\n"
              "regress on — the attacker is stuck with attacks 1 and 2.\n");
  return 0;
}
