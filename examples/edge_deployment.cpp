// edge_deployment — the systems view: what actually happens on the device.
//
// Deploys a protected model to the simulated Raspberry Pi 3B / OP-TEE
// device and reports:
//   * secure-memory accounting against the OP-TEE carve-out budget,
//   * the one-way channel traffic of one inference (and the mechanical
//     rejection of a TEE->REE push),
//   * the simulated latency timeline vs. the all-in-TEE baseline,
//   * the TA image that would ship to the device.
//
// Run: ./build/examples/edge_deployment

#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "runtime/deployed.h"
#include "runtime/measurements.h"
#include "tee/cost_model.h"
#include "tee/device_profile.h"
#include "tee/optee_api.h"

using namespace tbnet;

int main() {
  auto [train, test] = data::SyntheticCifar::make_split(10, 320, 160, 33);

  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.5;
  cfg.seed = 2;

  std::printf("preparing a protected %s...\n", cfg.name().c_str());
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 4;
  vt.batch_size = 64;
  vt.lr = 0.1;
  vt.augment = false;
  models::train_classifier(victim, train, test, vt);

  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  core::PipelineConfig pc;
  pc.transfer.epochs = 4;
  pc.transfer.augment = false;
  pc.prune.max_iterations = 3;
  pc.prune.acc_drop_budget = 0.08;
  pc.prune.finetune.epochs = 1;
  pc.prune.finetune.augment = false;
  pc.recovery.epochs = 1;
  pc.recovery.augment = false;
  core::TbnetPipeline(pc).run(model, models::prune_points(cfg), train, test);

  // ---- the device ---------------------------------------------------------
  const tee::DeviceProfile profile = tee::DeviceProfile::rpi3();
  std::printf("\ndevice: %s (secure carve-out %.0f MiB)\n",
              profile.name.c_str(),
              profile.secure_mem_budget / (1024.0 * 1024.0));
  tee::SecureWorld device(profile.secure_mem_budget);
  tee::TeeContext ctx(device);
  runtime::DeployedTBNet deployed(model, ctx);
  std::printf("TA image installed: %.1f KiB serialized\n",
              deployed.ta_image_bytes() / 1024.0);

  // ---- one inference, fully accounted -------------------------------------
  const data::Sample sample = test.get(0);
  const int64_t label = deployed.predict(sample.image);
  std::printf("\none inference: predicted %lld (truth %lld)\n",
              static_cast<long long>(label),
              static_cast<long long>(sample.label));
  std::printf("  world switches: %lld crossings\n",
              static_cast<long long>(ctx.channel().transfer_count()));
  std::printf("  REE->TEE payloads: %.1f KiB total\n",
              ctx.channel().bytes_into_tee() / 1024.0);
  std::printf("  TEE->REE leaks: %lld B (one-way policy)\n",
              static_cast<long long>(ctx.channel().leaked_bytes()));
  std::printf("  secure memory: live %.1f KiB, peak %.1f KiB\n",
              device.memory().live_bytes() / 1024.0,
              device.memory().peak_bytes() / 1024.0);

  // ---- the one-way property is mechanical, not a convention ---------------
  std::printf("\nattempting a TEE->REE feature-map push (64 KiB)...\n");
  try {
    ctx.channel().push(tee::World::kSecure, tee::World::kNormal, 64 * 1024);
    std::printf("  !! allowed — this would be a security bug\n");
  } catch (const tee::SecurityViolation& e) {
    std::printf("  rejected: %s\n", e.what());
  }

  // ---- latency: baseline vs. TBNet -----------------------------------------
  const tee::CostModel cm(profile);
  const auto vfp = runtime::measure_victim(victim, Shape{3, 32, 32});
  const auto tfp = runtime::measure_two_branch(model, Shape{3, 32, 32});
  const auto baseline =
      simulate_full_tee(cm, vfp.stage_macs, vfp.input_bytes);
  const auto split = simulate_two_branch(cm, tfp.stages);
  std::printf("\nsimulated latency (batch 1):\n");
  std::printf("  baseline (victim fully in TEE): %.4f s\n",
              baseline.makespan_s);
  std::printf("  TBNet split execution:          %.4f s  (%.2fx reduction)\n",
              split.makespan_s, baseline.makespan_s / split.makespan_s);
  std::printf("    REE busy %.4f s | TEE busy %.4f s | channel %.4f s\n",
              split.ree_busy_s, split.tee_busy_s, split.transfer_s);

  // ---- REE-side acceleration (paper §5.3) ----------------------------------
  std::printf("\nwith REE-side acceleration (threads/NEON, x4):\n");
  const tee::CostModel fast(tee::DeviceProfile::rpi3_accelerated_ree(4.0));
  const auto split_fast = simulate_two_branch(fast, tfp.stages);
  std::printf("  TBNet: %.4f s (baseline unchanged: TEE-bound)\n",
              split_fast.makespan_s);
  return 0;
}
