// Quickstart — the whole TBNet story in ~80 lines of user code.
//
//   1. Train a (small) victim model.
//   2. Build the two-branch substitution and run the six-step pipeline
//      (knowledge transfer -> iterative two-branch pruning -> rollback).
//   3. Deploy: M_R in the normal world, M_T as a trusted application in the
//      simulated OP-TEE secure world; run inference through the one-way API.
//   4. Show what an attacker gets from the exposed branch.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "attack/attacks.h"
#include "core/pipeline.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "runtime/deployed.h"
#include "tee/device_profile.h"
#include "tee/optee_api.h"

using namespace tbnet;

int main() {
  // ---- data: a CIFAR-10-shaped synthetic classification task ------------
  auto [train, test] =
      data::SyntheticCifar::make_split(/*classes=*/10, /*train=*/400,
                                       /*test=*/200, /*seed=*/7);

  // ---- 1. victim model ---------------------------------------------------
  models::ModelConfig cfg;
  cfg.family = models::Family::kResNet;
  cfg.depth = 20;
  cfg.classes = 10;
  cfg.width_mult = 0.5;  // CPU-sized; 1.0 = paper-sized
  cfg.seed = 1;

  std::printf("[1/4] training the victim (%s)...\n", cfg.name().c_str());
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig vt;
  vt.epochs = 6;
  vt.batch_size = 64;
  vt.lr = 0.1;
  vt.augment = false;
  vt.log_every = 2;
  models::train_classifier(victim, train, test, vt);
  const double victim_acc = models::evaluate(victim, test);
  std::printf("      victim accuracy: %.2f%%\n\n", 100 * victim_acc);

  // ---- 2. TBNet pipeline (steps 1-6 of the paper) -------------------------
  std::printf("[2/4] running the TBNet pipeline...\n");
  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  const auto points = models::prune_points(cfg);

  core::PipelineConfig pc;
  pc.transfer.epochs = 6;
  pc.transfer.lambda = 1e-4;  // Eq. 1 sparsity strength
  pc.transfer.augment = false;
  pc.prune.ratio = 0.10;      // 10% of channels per iteration
  pc.prune.acc_drop_budget = 0.06;
  pc.prune.max_iterations = 4;
  pc.prune.finetune.epochs = 1;
  pc.prune.finetune.augment = false;
  pc.recovery.epochs = 2;
  pc.recovery.augment = false;
  const core::PipelineReport report =
      core::TbnetPipeline(pc).run(model, points, train, test);
  std::printf("      transfer acc %.2f%% -> pruned acc %.2f%% (%d iters)"
              " -> final acc %.2f%%\n",
              100 * report.transfer_acc, 100 * report.pruned_acc,
              report.accepted_prune_iterations, 100 * report.final_acc);
  std::printf("      secure-branch size: %.2f KiB -> %.2f KiB\n\n",
              report.secure_bytes_initial / 1024.0,
              report.secure_bytes_final / 1024.0);

  // ---- 3. deploy to the simulated TrustZone device ------------------------
  std::printf("[3/4] deploying (M_R -> REE, M_T -> TEE)...\n");
  tee::SecureWorld device(tee::DeviceProfile::rpi3().secure_mem_budget);
  tee::TeeContext ctx(device);
  runtime::DeployedTBNet deployed(model, ctx);

  int correct = 0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const data::Sample s = test.get(i);
    correct += (deployed.predict(s.image) == s.label);
  }
  std::printf("      on-device accuracy over %d samples: %.0f%%\n", n,
              100.0 * correct / n);
  std::printf("      one-way channel: %lld transfers, %.1f KiB into the TEE,"
              " %lld B leaked\n",
              static_cast<long long>(ctx.channel().transfer_count()),
              ctx.channel().bytes_into_tee() / 1024.0,
              static_cast<long long>(ctx.channel().leaked_bytes()));
  std::printf("      secure memory: %.1f KiB live, %.1f KiB peak (budget %.1f MiB)\n\n",
              device.memory().live_bytes() / 1024.0,
              device.memory().peak_bytes() / 1024.0,
              device.memory().budget() / (1024.0 * 1024.0));

  // ---- 4. the attacker's view ---------------------------------------------
  std::printf("[4/4] attacker lifts M_R from REE memory...\n");
  const double stolen = attack::direct_use_accuracy(model, test);
  std::printf("      stolen-model accuracy: %.2f%% (TBNet: %.2f%%, gap %.2f%%)\n",
              100 * stolen, 100 * report.final_acc,
              100 * (report.final_acc - stolen));
  return 0;
}
