#!/usr/bin/env python3
"""Fixture tests for tools/tbnet_lint.py: every rule must fire on a
deliberate violation and stay quiet on the compliant twin. Runs as the
`lint_selftest` ctest entry, so a rule that silently stops matching (regex
rot, path rename) fails CI rather than linting nothing.

Each test assembles a throwaway mini-repo in a temp dir with only the files
the rule under test reads — tbnet_lint skips rules whose anchor files are
absent, which is exactly what keeps these fixtures small.
"""

import os
import sys
import tempfile
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import tbnet_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def put(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(content))

    def rules_fired(self):
        return [f.rule for f in tbnet_lint.run(self.root)]


class HotPathHeapTest(LintFixture):
    def test_bare_new_in_kernel_file_fires(self):
        self.put("src/tensor/simd.cpp", """\
            void grow() {
              float* p = new float[64];
              (void)p;
            }
            """)
        self.assertEqual(self.rules_fired(), ["hot-path-heap"])

    def test_allow_heap_marker_waives(self):
        self.put("src/tensor/simd.cpp", """\
            void grow() {
              // lint: allow-heap(prepare-time fallback, fixture)
              float* p = new float[64];
              (void)p;
            }
            """)
        self.assertEqual(self.rules_fired(), [])

    def test_empty_justification_does_not_waive(self):
        self.put("src/tensor/simd.cpp", """\
            void grow() {
              // lint: allow-heap()
              float* p = new float[64];
              (void)p;
            }
            """)
        self.assertEqual(self.rules_fired(), ["hot-path-heap"])

    def test_new_inside_string_or_comment_is_ignored(self):
        self.put("src/tensor/simd.cpp", """\
            #include <new>
            // a new comment about new things
            const char* kMsg = "try the new kernels";
            """)
        self.assertEqual(self.rules_fired(), [])

    def test_container_growth_fires(self):
        self.put("src/tensor/pack.cpp", """\
            void grow(std::vector<float>& v) { v.push_back(1.0f); }
            """)
        self.assertEqual(self.rules_fired(), ["hot-path-heap"])


class EnumSwitchTest(LintFixture):
    ENUM_HEADER = """\
        enum class WorkerHealth {
          kHealthy = 0,
          kQuarantined,
          kRecovering,
          kDead,
        };
        """

    def test_missing_enumerator_without_default_fires(self):
        self.put("src/runtime/measurements.h", self.ENUM_HEADER)
        self.put("src/runtime/server.cpp", """\
            const char* f(WorkerHealth h) {
              switch (h) {
                case WorkerHealth::kHealthy: return "healthy";
                case WorkerHealth::kDead: return "dead";
              }
              return "?";
            }
            """)
        fired = self.rules_fired()
        self.assertEqual(fired, ["enum-switch"])
        finding = tbnet_lint.run(self.root)[0]
        self.assertIn("kQuarantined", finding.message)
        self.assertIn("kRecovering", finding.message)

    def test_exhaustive_switch_is_clean(self):
        self.put("src/runtime/measurements.h", self.ENUM_HEADER)
        self.put("src/runtime/server.cpp", """\
            const char* f(WorkerHealth h) {
              switch (h) {
                case WorkerHealth::kHealthy: return "healthy";
                case WorkerHealth::kQuarantined: return "quarantined";
                case WorkerHealth::kRecovering: return "recovering";
                case WorkerHealth::kDead: return "dead";
              }
              return "?";
            }
            """)
        self.assertEqual(self.rules_fired(), [])

    def test_default_label_is_clean(self):
        self.put("src/runtime/measurements.h", self.ENUM_HEADER)
        self.put("src/runtime/server.cpp", """\
            bool g(WorkerHealth h) {
              switch (h) {
                case WorkerHealth::kDead: return false;
                default: return true;
              }
            }
            """)
        self.assertEqual(self.rules_fired(), [])

    def test_switch_over_untracked_enum_is_ignored(self):
        self.put("src/runtime/measurements.h", self.ENUM_HEADER)
        self.put("src/runtime/server.cpp", """\
            int h(Color c) {
              switch (c) {
                case Color::kRed: return 1;
              }
              return 0;
            }
            """)
        self.assertEqual(self.rules_fired(), [])


class EnvDocTest(LintFixture):
    def test_undocumented_env_var_fires(self):
        self.put("src/runtime/server.cpp",
                 'const char* v = std::getenv("TBNET_MYSTERY");\n')
        self.put("README.md", "No knobs documented here.\n")
        fired = tbnet_lint.run(self.root)
        self.assertEqual([f.rule for f in fired], ["env-doc"])
        self.assertIn("TBNET_MYSTERY", fired[0].message)

    def test_documented_env_var_is_clean(self):
        self.put("src/runtime/server.cpp",
                 'const char* v = std::getenv("TBNET_MYSTERY");\n')
        self.put("README.md", "`TBNET_MYSTERY=1` enables mystery mode.\n")
        self.assertEqual(self.rules_fired(), [])

    def test_tests_directory_is_not_scanned(self):
        self.put("tests/test_env.cpp",
                 'setenv("TBNET_TEST_ONLY", "1", 1);\n')
        self.put("README.md", "Nothing.\n")
        self.assertEqual(self.rules_fired(), [])

    def test_docs_operations_counts_as_documentation(self):
        # Since PR 10 the consolidated env table lives in docs/OPERATIONS.md;
        # a var documented there but absent from README.md is fine.
        self.put("src/runtime/server.cpp",
                 'const char* v = std::getenv("TBNET_MYSTERY");\n')
        self.put("README.md", "No knobs documented here.\n")
        self.put("docs/OPERATIONS.md",
                 "`TBNET_MYSTERY=1` enables mystery mode.\n")
        self.assertEqual(self.rules_fired(), [])


class DocsCoverageTest(LintFixture):
    SERVER_H = """\
        struct Config {
          int64_t max_batch = 16;
          std::chrono::microseconds max_queue_delay{2000};
          double scale_down_utilization = 0.3;
          bool helper() const { return max_batch > 0; }
        };
        """
    MEASUREMENTS_H = """\
        struct ServingStats {
          int64_t requests = 0;
          int64_t scale_ups = 0;
          double mean_batch_size() const { return 1.0; }
        };
        """
    DOCS_ALL = """\
        `max_batch`, `max_queue_delay`, `scale_down_utilization` are knobs.
        Counters: `requests`, `scale_ups`.
        """

    def test_missing_config_field_fires(self):
        self.put("src/runtime/server.h", self.SERVER_H)
        self.put("docs/OPERATIONS.md",
                 "`max_batch` and `max_queue_delay` are documented.\n")
        fired = tbnet_lint.run(self.root)
        self.assertEqual([f.rule for f in fired], ["docs-coverage"])
        self.assertIn("scale_down_utilization", fired[0].message)

    def test_missing_stats_counter_fires(self):
        self.put("src/runtime/measurements.h", self.MEASUREMENTS_H)
        self.put("docs/OPERATIONS.md", "Counters: `requests`.\n")
        fired = tbnet_lint.run(self.root)
        self.assertEqual([f.rule for f in fired], ["docs-coverage"])
        self.assertIn("scale_ups", fired[0].message)

    def test_fully_documented_is_clean(self):
        self.put("src/runtime/server.h", self.SERVER_H)
        self.put("src/runtime/measurements.h", self.MEASUREMENTS_H)
        self.put("docs/OPERATIONS.md", self.DOCS_ALL)
        self.assertEqual(self.rules_fired(), [])

    def test_member_functions_are_not_required(self):
        # helper()/mean_batch_size() are API, not knobs/counters — the docs
        # above never mention them and the rule stays quiet.
        self.put("src/runtime/server.h", self.SERVER_H)
        self.put("src/runtime/measurements.h", self.MEASUREMENTS_H)
        self.put("docs/OPERATIONS.md", self.DOCS_ALL)
        findings = [f for f in tbnet_lint.run(self.root)
                    if "helper" in f.message or "mean_batch_size" in f.message]
        self.assertEqual(findings, [])

    def test_structs_without_docs_file_fire(self):
        self.put("src/runtime/server.h", self.SERVER_H)
        fired = tbnet_lint.run(self.root)
        self.assertEqual([f.rule for f in fired], ["docs-coverage"])
        self.assertIn("docs/OPERATIONS.md is missing", fired[0].message)

    def test_tree_without_serving_stack_is_skipped(self):
        self.put("src/tensor/simd.cpp", "int x = 0;\n")
        self.assertEqual(self.rules_fired(), [])


class BenchKeysTest(LintFixture):
    def test_unknown_top_level_key_fires(self):
        self.put("BENCH_kernels.json", '{"gemm": [], "novel_section": 1}\n')
        self.put("tools/check_bench_regression.py",
                 'METADATA_KEYS = {"quick"}\ncompare(b, c, "gemm")\n')
        fired = tbnet_lint.run(self.root)
        self.assertEqual([f.rule for f in fired], ["bench-keys"])
        self.assertIn("novel_section", fired[0].message)

    def test_gated_and_metadata_keys_are_clean(self):
        self.put("BENCH_kernels.json", '{"gemm": [], "quick": true}\n')
        self.put("tools/check_bench_regression.py",
                 'METADATA_KEYS = {"quick"}\ncompare(b, c, "gemm")\n')
        self.assertEqual(self.rules_fired(), [])


class SeededRngTest(LintFixture):
    def test_std_rand_fires(self):
        self.put("src/runtime/server.cpp",
                 "int r() { return std::rand(); }\n")
        self.assertEqual(self.rules_fired(), ["seeded-rng"])

    def test_random_device_fires(self):
        self.put("bench/common.cpp",
                 "#include <random>\nstd::random_device rd;\n")
        self.assertEqual(self.rules_fired(), ["seeded-rng"])

    def test_tests_directory_exempt(self):
        self.put("tests/test_rng.cpp",
                 "int r() { return std::rand(); }\n")
        self.assertEqual(self.rules_fired(), [])


class RealRepoTest(unittest.TestCase):
    """The committed tree must lint clean — same invocation CI blocks on."""

    def test_repo_is_clean(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(tbnet_lint.__file__)))
        findings = tbnet_lint.run(root)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
