#!/usr/bin/env python3
"""Header self-containment gate: every public header under src/ must compile
as the FIRST include of a translation unit. A header that only builds when
some sibling was included before it breaks the next refactor silently; this
check (the `header_selfcontained` ctest entry, blocking in CI) catches the
missing-include the moment it is introduced.

For each src/**/*.h it synthesizes

    #include "<header>"
    int main() { return 0; }

and runs `$CXX -std=c++20 -fsyntax-only -I src` on it. Failures print the
compiler's own diagnostics. Headers are checked in parallel-free sequence —
-fsyntax-only keeps the whole sweep to a few seconds.

Usage: check_header_selfcontained.py [--root DIR] [--cxx COMPILER]
(defaults: repo root containing this script; $CXX, else c++).
"""

import argparse
import glob
import os
import subprocess
import sys
import tempfile


def headers(root):
    return sorted(glob.glob(os.path.join(root, "src", "**", "*.h"),
                            recursive=True))


def check(root, cxx, header):
    rel = os.path.relpath(header, os.path.join(root, "src"))
    with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", delete=False) as tu:
        tu.write(f'#include "{rel}"\nint main() {{ return 0; }}\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [cxx, "-std=c++20", "-fsyntax-only",
             "-I", os.path.join(root, "src"), tu_path],
            capture_output=True, text=True)
        return rel, proc.returncode, proc.stderr
    finally:
        os.unlink(tu_path)


def main():
    ap = argparse.ArgumentParser(
        description="Compile every src/ header standalone (see docstring).")
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--root", default=default_root)
    ap.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    args = ap.parse_args()

    hdrs = headers(args.root)
    if not hdrs:
        print("check_header_selfcontained: no headers under src/ — "
              "wrong --root?", file=sys.stderr)
        return 1

    failures = []
    for header in hdrs:
        rel, rc, stderr = check(args.root, args.cxx, header)
        if rc != 0:
            failures.append((rel, stderr))
            print(f"NOT SELF-CONTAINED: src/{rel}")
            print(stderr)

    total = len(hdrs)
    if failures:
        print(f"check_header_selfcontained: {len(failures)}/{total} "
              f"header(s) failed")
        return 1
    print(f"check_header_selfcontained: {total} headers OK "
          f"({args.cxx} -std=c++20)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
