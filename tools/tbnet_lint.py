#!/usr/bin/env python3
"""Repo-invariant linter: AST-free checks for the contracts this repo
actually relies on but no compiler flag can express.

Rules (each reported as `rule-name: file:line: message`):

  hot-path-heap      No heap allocation inside the kernel hot-path files
                     (src/tensor/simd.cpp, src/tensor/pack.cpp): new /
                     malloc / calloc / realloc and container growth
                     (push_back / emplace_back / resize / reserve) are
                     banned — kernels draw from the arena so the serving
                     steady state allocates nothing. A deliberate
                     prepare-time exception carries a
                     `lint: allow-heap(<justification>)` comment on the
                     same or one of the two preceding lines; an empty
                     justification does not waive.
  enum-switch        Every `switch` over Status (runtime/server.h),
                     WorkerHealth (runtime/measurements.h), or
                     FaultInjector::Kind (tee/fault.h) either covers every
                     enumerator or has a `default:` label. Adding an enum
                     value must break the build (or this lint), never
                     silently fall through — route string forms through the
                     `*_name` helpers, which are exhaustive switches
                     themselves.
  env-doc            Every `"TBNET_*"` environment variable named in code
                     (src/, bench/, tools/, examples/) is documented in
                     README.md or docs/OPERATIONS.md (the consolidated
                     env-var table lives there since PR 10). Undocumented
                     knobs rot.
  docs-coverage      Every data member of InferenceServer::Config
                     (src/runtime/server.h) and every counter of
                     ServingStats (src/runtime/measurements.h) is named in
                     docs/OPERATIONS.md — adding a serving knob or stat
                     without operator documentation fails CI. Skipped
                     silently when the anchor structs are absent (fixture
                     trees); the structs existing WITHOUT the docs file is
                     itself a finding.
  bench-keys         Every top-level key of the committed BENCH_*.json
                     baselines is known to tools/check_bench_regression.py
                     (gated, or listed in its METADATA_KEYS). A bench
                     section nobody gates or declares is a silent coverage
                     hole.
  seeded-rng         No std::rand / srand / std::random_device outside
                     tests/: all randomness in shipped code must be seeded
                     (Rng, splitmix64) so runs are reproducible.

Comments and string literals are stripped before token scans, so a banned
token inside an error message or a comment never fires.

Usage: tbnet_lint.py [--root DIR]   (DIR defaults to the repo root, taken
as the parent of this script's directory). Exits 1 when any rule fires.

Adding a rule: write a `check_*(root) -> list[Finding]` function, append it
to CHECKS, and add a fixture to tools/test_tbnet_lint.py proving it fires —
the lint_selftest ctest entry runs those fixtures, so an inert rule fails
CI. Suppressions are rule-specific and must carry a justification (see
hot-path-heap); there is no blanket ignore.
"""

import argparse
import glob
import json
import os
import re
import sys

KERNEL_HOT_FILES = ["src/tensor/simd.cpp", "src/tensor/pack.cpp"]

# enum name -> header (relative to root) defining it. The parser finds
# `enum class <name>` and collects enumerators up to the closing brace.
TARGET_ENUMS = {
    "Status": "src/runtime/server.h",
    "WorkerHealth": "src/runtime/measurements.h",
    "Kind": "src/tee/fault.h",
}

CODE_DIRS = ["src", "bench", "tools", "examples"]
CODE_EXTS = (".cpp", ".h")

HEAP_TOKEN = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"\.push_back\s*\(|\.emplace_back\s*\(|\.resize\s*\(|\.reserve\s*\(")
ALLOW_HEAP = re.compile(r"lint:\s*allow-heap\(([^)]+)\)")
ENV_VAR = re.compile(r'"(TBNET_[A-Z0-9_]+)"')
RNG_TOKEN = re.compile(r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule, self.path, self.line, self.message = rule, path, line, message

    def __str__(self):
        return f"{self.rule}: {self.path}:{self.line}: {self.message}"


def strip_code(text):
    """Blanks out comments and string/char literals, preserving newlines so
    line numbers survive. Handles //, /* */, "..." and '...' with escapes
    (the constructs this codebase uses; raw strings are not)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def code_files(root):
    for d in CODE_DIRS:
        for ext in CODE_EXTS:
            pattern = os.path.join(root, d, "**", f"*{ext}")
            yield from sorted(glob.glob(pattern, recursive=True))


def rel(root, path):
    return os.path.relpath(path, root)


# ---------------------------------------------------------- hot-path-heap --

def check_hot_path_heap(root):
    findings = []
    for relpath in KERNEL_HOT_FILES:
        path = os.path.join(root, relpath)
        if not os.path.exists(path):
            continue
        raw_lines = read(path).splitlines()
        stripped = strip_code(read(path)).splitlines()
        for lineno, line in enumerate(stripped, start=1):
            if re.match(r"\s*#\s*include\b", line):  # e.g. #include <new>
                continue
            m = HEAP_TOKEN.search(line)
            if not m:
                continue
            # Waiver window: the flagged line or the two lines above it
            # (comment conventions put the marker on its own line).
            window = raw_lines[max(0, lineno - 3):lineno]
            if any(ALLOW_HEAP.search(w) for w in window):
                continue
            findings.append(Finding(
                "hot-path-heap", relpath, lineno,
                f"heap allocation token `{m.group(0).strip()}` in a kernel "
                f"hot-path file — use the arena, or justify with "
                f"`lint: allow-heap(<why>)`"))
    return findings


# ------------------------------------------------------------ enum-switch --

def parse_enum(root, name, header):
    path = os.path.join(root, header)
    if not os.path.exists(path):
        return None
    text = strip_code(read(path))
    m = re.search(rf"enum\s+class\s+{name}\b[^{{]*{{", text)
    if not m:
        return None
    body = text[m.end():text.index("}", m.end())]
    return set(re.findall(r"\b(k[A-Za-z0-9_]+)\b\s*(?:=[^,]*)?(?:,|$)", body))


def switch_blocks(text):
    """Yields (lineno, body) for every switch statement in stripped code."""
    for m in re.finditer(r"\bswitch\s*\(", text):
        # Find the opening brace after the controlling expression.
        depth, i = 1, m.end()
        while i < len(text) and depth:
            depth += {"(": 1, ")": -1}.get(text[i], 0)
            i += 1
        brace = text.find("{", i)
        if brace < 0:
            continue
        depth, j = 1, brace + 1
        while j < len(text) and depth:
            depth += {"{": 1, "}": -1}.get(text[j], 0)
            j += 1
        yield text.count("\n", 0, m.start()) + 1, text[brace:j]


def check_enum_switch(root):
    enums = {}
    for name, header in TARGET_ENUMS.items():
        values = parse_enum(root, name, header)
        if values:
            enums[name] = values
    findings = []
    for path in code_files(root):
        text = strip_code(read(path))
        if "switch" not in text:
            continue
        for lineno, body in switch_blocks(text):
            cases = re.findall(r"case\s+((?:\w+::)*\w+)\s*:", body)
            for name, values in enums.items():
                covered = {c.split("::")[-1] for c in cases
                           if c.split("::")[-2:-1] == [name]}
                if not covered:
                    continue
                missing = values - covered
                if missing and not re.search(r"\bdefault\s*:", body):
                    findings.append(Finding(
                        "enum-switch", rel(root, path), lineno,
                        f"switch over {name} misses "
                        f"{{{', '.join(sorted(missing))}}} and has no "
                        f"default — cover every enumerator or route through "
                        f"the *_name helper"))
    return findings


# ---------------------------------------------------------------- env-doc --

ENV_DOC_FILES = ["README.md", "docs/OPERATIONS.md"]


def check_env_doc(root):
    documented = ""
    for doc in ENV_DOC_FILES:
        path = os.path.join(root, doc)
        if os.path.exists(path):
            documented += read(path)
    findings = []
    seen = set()
    for path in code_files(root):
        # Scan raw text: env names live inside string literals by nature.
        for lineno, line in enumerate(read(path).splitlines(), start=1):
            for m in ENV_VAR.finditer(line):
                var = m.group(1)
                if var in seen or var in documented:
                    continue
                seen.add(var)
                findings.append(Finding(
                    "env-doc", rel(root, path), lineno,
                    f"{var} is read here but not documented in "
                    f"{' or '.join(ENV_DOC_FILES)}"))
    return findings


# ----------------------------------------------------------- docs-coverage --

# (struct, header) anchors whose data members must all be named in DOCS_OPS.
DOCS_COVERAGE_STRUCTS = [
    ("Config", "src/runtime/server.h"),
    ("ServingStats", "src/runtime/measurements.h"),
]
DOCS_OPS = "docs/OPERATIONS.md"


def struct_members(text, name):
    """Returns [(member, lineno)] for the depth-1 data members of
    `struct <name>` in stripped code, or None when the struct is absent.
    Member functions, nested type definitions, and anything inside nested
    braces (function bodies, brace initializers) are skipped."""
    m = re.search(rf"struct\s+{name}\b[^{{;]*{{", text)
    if m is None:
        return None
    members = []
    depth, i = 1, m.end()
    line = text.count("\n", 0, i) + 1
    chunk, chunk_line = "", line

    def flush():
        nonlocal chunk
        decl, chunk = chunk.strip(), ""
        if (not decl or "(" in decl
                or decl.startswith(("using ", "static ", "typedef ",
                                    "friend ", "enum ", "struct ",
                                    "class "))):
            return
        # `<type tokens...> <name>` optionally `= <init>`: the member name
        # is the last identifier before any initializer.
        tokens = re.findall(r"[A-Za-z_]\w*", decl.split("=", 1)[0])
        if len(tokens) >= 2:
            members.append((tokens[-1], chunk_line))

    while i < len(text) and depth:
        c = text[i]
        if c == "\n":
            line += 1
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 1:  # function body / brace initializer closed
                flush()
                chunk_line = line
        elif depth == 1:
            if c == ";":
                flush()
                chunk_line = line
            else:
                if not chunk.strip():
                    chunk_line = line
                chunk += c
        i += 1
    return members


def check_docs_coverage(root):
    findings = []
    ops_path = os.path.join(root, DOCS_OPS)
    ops = read(ops_path) if os.path.exists(ops_path) else None
    for struct, header in DOCS_COVERAGE_STRUCTS:
        path = os.path.join(root, header)
        if not os.path.exists(path):
            continue  # tree without the serving stack (lint fixtures)
        members = struct_members(strip_code(read(path)), struct)
        if members is None:
            continue
        if ops is None:
            findings.append(Finding(
                "docs-coverage", header, 1,
                f"struct {struct} exists but {DOCS_OPS} is missing — every "
                f"Config field and ServingStats counter must be documented "
                f"there"))
            continue
        for name, lineno in members:
            if not re.search(rf"\b{re.escape(name)}\b", ops):
                findings.append(Finding(
                    "docs-coverage", header, lineno,
                    f"{struct}::{name} is not mentioned in {DOCS_OPS} — "
                    f"document the knob/counter where operators will look "
                    f"for it"))
    return findings


# ------------------------------------------------------------- bench-keys --

def check_bench_keys(root):
    checker_path = os.path.join(root, "tools", "check_bench_regression.py")
    checker = read(checker_path) if os.path.exists(checker_path) else ""
    findings = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            doc = json.loads(read(path))
        except json.JSONDecodeError as e:
            findings.append(Finding("bench-keys", rel(root, path), 1,
                                    f"unparseable JSON: {e}"))
            continue
        if not isinstance(doc, dict):
            continue
        for key in doc:
            if f'"{key}"' not in checker:
                findings.append(Finding(
                    "bench-keys", rel(root, path), 1,
                    f"top-level key \"{key}\" is not known to "
                    f"check_bench_regression.py — gate it or add it to "
                    f"METADATA_KEYS there"))
    return findings


# ------------------------------------------------------------- seeded-rng --

def check_seeded_rng(root):
    findings = []
    for path in code_files(root):
        text = strip_code(read(path))
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = RNG_TOKEN.search(line)
            if m:
                findings.append(Finding(
                    "seeded-rng", rel(root, path), lineno,
                    f"`{m.group(0).strip()}` outside tests/ — use a seeded "
                    f"Rng/splitmix64 so runs are reproducible"))
    return findings


CHECKS = [
    check_hot_path_heap,
    check_enum_switch,
    check_env_doc,
    check_docs_coverage,
    check_bench_keys,
    check_seeded_rng,
]


def run(root):
    findings = []
    for check in CHECKS:
        findings.extend(check(root))
    return findings


def main():
    ap = argparse.ArgumentParser(
        description="Repo-invariant linter (see module docstring).")
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--root", default=default_root,
                    help="repo root to lint (default: this script's repo)")
    args = ap.parse_args()

    findings = run(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"tbnet_lint: {len(findings)} finding(s)")
        return 1
    print("tbnet_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
