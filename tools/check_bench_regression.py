#!/usr/bin/env python3
"""Perf-regression gate for bench_kernels / bench_serving output.

Compares a fresh bench JSON (typically the CI --quick smoke) against the
committed baseline (BENCH_kernels.json / BENCH_serving.json at the repo
root) and flags any metric that regressed by more than the threshold:

  * "gemm" shapes: packed_gflops (higher is better)
  * "int8_gemm" shapes: int8_gflops (higher is better)
  * "conv_lowering" shapes: fused_ms (lower is better)
  * "fused_conv" shapes: fused_ms (lower is better)
  * "depthwise" shapes: simd_ms (lower is better)
  * "depthwise_fused" shapes: fused_ms (lower is better)
  * "soak" (bench_serving): goodput_vs_1x (higher is better) — the bounded
    queue's goodput at 10x offered load as a fraction of 1x goodput. The
    ratio is dimensionless (both sides measured on the same run/host), so it
    gates portably across runners of different absolute speed.
  * "chaos" (bench_serving --chaos): recovery_ratio (higher is better) —
    goodput after a killed worker recovers as a fraction of pre-kill
    goodput, compared against the baseline AND held to an absolute floor of
    0.95 (self-healing must restore service, not merely limp). Two absolute
    invariants are also enforced whenever the current run carries a chaos
    section: unresolved == 0 (drain never abandons a future) and
    recoveries >= 1 (the killed worker actually came back).
  * "elastic" (bench_serving, soak enabled): the autoscaled pool vs the
    fixed single-worker baseline under the 1x->10x->1x load step. Absolute
    floors whenever the current run carries the section: goodput at least
    the fixed baseline's (goodput_elastic_vs_fixed >= 1.0), shed rate
    strictly below the fixed pool's, workers_high_water > min_workers (the
    autoscaler actually grew the pool), and unresolved == 0 (scale-down
    strands no future). goodput_elastic_vs_fixed is additionally compared
    against the baseline file under the regression threshold.

Sections absent from either file are skipped, so the one script gates both
bench artifacts.

Only shapes present in BOTH files are compared (the --quick smoke runs a
subset of the full baseline). The gate is BLOCKING (exit 1 on regression);
--warn-only remains for calibrating new runners. When the two files report
different kernel tiers ("isa" / "int8_isa" fields) the numbers are not
comparable — a VNNI baseline against a maddubs runner would flag phantom
regressions — so the gate automatically downgrades to warn-only.

Noise floor: genuinely tiny shapes are timing noise on shared CI vCPUs, so
any shape whose flop count (2*m*n*k for gemm entries, the emitted "flops"
field elsewhere) falls below --min-flops is reported but exempt from
gating. Shapes without flop information are always gated.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json
                            [--threshold 0.2] [--min-flops 1e3] [--warn-only]

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

# Top-level baseline keys that are deliberately NOT gated: run metadata
# (machine shape, kernel tiers, bench mode), derived summary numbers whose
# inputs are already gated shape-by-shape above, and descriptive sections
# (scaling curves, stage tables, sweeps) that vary too much across runners
# to hold to a ratio. tools/tbnet_lint.py enforces that every top-level key
# of BENCH_*.json appears either in a compare_* gate or in this set — adding
# a bench section without deciding its gating status fails CI.
METADATA_KEYS = frozenset({
    # BENCH_kernels.json
    "bench", "isa", "int8_isa", "fast_kernels", "threads", "quick",
    "hardware_threads", "geomean_speedup", "min_resnet_speedup",
    "int8_geomean_vs_f32", "micro_roofline_gflops", "thread_scaling",
    "nested_scaling",
    # BENCH_serving.json
    "model", "stages", "device_timing", "workspace_bytes", "sweep",
    "server", "server_workers", "speedup_batch16_vs_batch1",
    "speedup_workers2_vs_1",
    # width_cap is descriptive: the capped-vs-uncapped ratio only means
    # something on >= 2 hardware threads, so CI notes it warn-only instead
    # of gating a 1-vCPU runner's noise.
    "width_cap",
})


def index_by_name(entries):
    return {e["name"]: e for e in entries}


def entry_flops(entry):
    """Flop count of one shape, or None when the entry carries no size info."""
    if all(k in entry for k in ("m", "n", "k")):
        return 2.0 * float(entry["m"]) * float(entry["n"]) * float(entry["k"])
    if "flops" in entry:
        return float(entry["flops"])
    return None


def compare(baseline, current, key, higher_is_better, threshold, min_flops,
            label):
    """Returns a list of (name, base, cur, ratio) regressions."""
    regressions = []
    base_by_name = index_by_name(baseline.get(label, []))
    for entry in current.get(label, []):
        base = base_by_name.get(entry["name"])
        if base is None or key not in base or key not in entry:
            continue
        b, c = float(base[key]), float(entry[key])
        if b <= 0 or c <= 0:
            continue
        # Normalize so ratio < 1 always means "worse than baseline".
        ratio = (c / b) if higher_is_better else (b / c)
        flops = entry_flops(entry)
        noisy = flops is not None and flops < min_flops
        if ratio >= 1.0 - threshold:
            status = "OK"
        elif noisy:
            status = "NOISY-EXEMPT"
        else:
            status = "REGRESSED"
        print(f"  [{status}] {label}/{entry['name']}: {key} "
              f"baseline={b:.4g} current={c:.4g} (ratio {ratio:.2f})")
        if status == "REGRESSED":
            regressions.append((entry["name"], b, c, ratio))
    return regressions


def compare_soak(baseline, current, threshold):
    """Gates bench_serving's soak.goodput_vs_1x (higher is better)."""
    b = (baseline.get("soak") or {}).get("goodput_vs_1x")
    c = (current.get("soak") or {}).get("goodput_vs_1x")
    if b is None or c is None:
        return []
    b, c = float(b), float(c)
    if b <= 0 or c <= 0:
        return []
    ratio = c / b
    status = "OK" if ratio >= 1.0 - threshold else "REGRESSED"
    print(f"  [{status}] soak/goodput_vs_1x: "
          f"baseline={b:.4g} current={c:.4g} (ratio {ratio:.2f})")
    if status == "REGRESSED":
        return [("soak/goodput_vs_1x", b, c, ratio)]
    return []


# Absolute floor for chaos/recovery_ratio: after the killed worker is
# re-admitted, goodput must be back within 5% of pre-kill goodput.
CHAOS_RECOVERY_FLOOR = 0.95


def compare_chaos(baseline, current, threshold):
    """Gates the chaos soak: recovery_ratio vs baseline + absolute invariants.

    Skipped entirely when the current run has no "chaos" section (the flag
    was not passed); the baseline-relative leg is additionally skipped when
    the baseline predates the section.
    """
    cur = current.get("chaos")
    if not cur:
        return []
    regressions = []

    unresolved = int(cur.get("unresolved", 0))
    recoveries = int(cur.get("recoveries", 0))
    ratio = float(cur.get("recovery_ratio", 0.0))
    ok = (unresolved == 0 and recoveries >= 1
          and ratio >= CHAOS_RECOVERY_FLOOR)
    status = "OK" if ok else "REGRESSED"
    print(f"  [{status}] chaos: recovery_ratio={ratio:.3f} "
          f"(floor {CHAOS_RECOVERY_FLOOR}), unresolved={unresolved}, "
          f"recoveries={recoveries}")
    if not ok:
        regressions.append(("chaos/recovery (absolute floor)",
                            CHAOS_RECOVERY_FLOOR, ratio,
                            ratio / CHAOS_RECOVERY_FLOOR))

    base = baseline.get("chaos")
    if base:
        b, c = float(base.get("recovery_ratio", 0.0)), ratio
        if b > 0 and c > 0:
            rel = c / b
            status = "OK" if rel >= 1.0 - threshold else "REGRESSED"
            print(f"  [{status}] chaos/recovery_ratio: baseline={b:.4g} "
                  f"current={c:.4g} (ratio {rel:.2f})")
            if status == "REGRESSED":
                regressions.append(("chaos/recovery_ratio", b, c, rel))
    return regressions


def compare_elastic(baseline, current, threshold):
    """Gates the elastic soak: absolute floors + baseline-relative goodput.

    Skipped when the current run has no "elastic" section (soak disabled);
    the baseline-relative leg is additionally skipped when the baseline
    predates the section.
    """
    cur = current.get("elastic")
    if not cur:
        return []
    regressions = []

    goodput_ratio = float(cur.get("goodput_elastic_vs_fixed", 0.0))
    shed_fixed = float(cur.get("shed_rate_fixed", 0.0))
    shed_elastic = float(cur.get("shed_rate_elastic", 0.0))
    unresolved = int(cur.get("unresolved", 0))
    high_water = int(cur.get("workers_high_water", 0))
    min_workers = int(cur.get("min_workers", 1))
    ok = (goodput_ratio >= 1.0 and shed_elastic < shed_fixed
          and unresolved == 0 and high_water > min_workers)
    status = "OK" if ok else "REGRESSED"
    print(f"  [{status}] elastic: goodput_elastic_vs_fixed="
          f"{goodput_ratio:.3f} (floor 1.0), shed_rate {shed_elastic:.3f} "
          f"vs fixed {shed_fixed:.3f} (must be strictly lower), "
          f"workers_high_water={high_water} (must exceed {min_workers}), "
          f"unresolved={unresolved}")
    if not ok:
        regressions.append(("elastic/autoscale (absolute floors)", 1.0,
                            goodput_ratio, goodput_ratio))

    base = baseline.get("elastic")
    if base:
        b = float(base.get("goodput_elastic_vs_fixed", 0.0))
        if b > 0 and goodput_ratio > 0:
            rel = goodput_ratio / b
            status = "OK" if rel >= 1.0 - threshold else "REGRESSED"
            print(f"  [{status}] elastic/goodput_elastic_vs_fixed: "
                  f"baseline={b:.4g} current={goodput_ratio:.4g} "
                  f"(ratio {rel:.2f})")
            if status == "REGRESSED":
                regressions.append(("elastic/goodput_elastic_vs_fixed", b,
                                    goodput_ratio, rel))
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.2,
                    help="allowed fractional regression per shape "
                         "(default 0.2 = 20%%)")
    ap.add_argument("--min-flops", type=float, default=1e3,
                    help="shapes below this flop count are reported but "
                         "never fail the gate (default 1e3: every emitted "
                         "shape, including the batch-1 dense head, is gated "
                         "by default)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (runner calibration)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    warn_only = args.warn_only
    for tier_key in ("isa", "int8_isa"):
        b_tier, c_tier = baseline.get(tier_key), current.get(tier_key)
        if b_tier is not None and c_tier is not None and b_tier != c_tier:
            print(f"NOTE: {tier_key} mismatch (baseline '{b_tier}' vs "
                  f"current '{c_tier}'); numbers are not comparable — "
                  f"downgrading to warn-only.")
            warn_only = True

    print(f"Comparing {args.current} against {args.baseline} "
          f"(threshold {args.threshold:.0%}, "
          f"noise floor {args.min_flops:.0g} flops):")
    regressions = []
    regressions += compare(baseline, current, "packed_gflops", True,
                           args.threshold, args.min_flops, "gemm")
    regressions += compare(baseline, current, "int8_gflops", True,
                           args.threshold, args.min_flops, "int8_gemm")
    regressions += compare(baseline, current, "fused_ms", False,
                           args.threshold, args.min_flops, "conv_lowering")
    regressions += compare(baseline, current, "fused_ms", False,
                           args.threshold, args.min_flops, "fused_conv")
    regressions += compare(baseline, current, "simd_ms", False,
                           args.threshold, args.min_flops, "depthwise")
    regressions += compare(baseline, current, "fused_ms", False,
                           args.threshold, args.min_flops, "depthwise_fused")
    regressions += compare_soak(baseline, current, args.threshold)
    regressions += compare_chaos(baseline, current, args.threshold)
    regressions += compare_elastic(baseline, current, args.threshold)

    if not regressions:
        print("No gated per-shape regression beyond threshold.")
        return 0
    print(f"{len(regressions)} shape(s) regressed beyond "
          f"{args.threshold:.0%}:")
    for name, b, c, ratio in regressions:
        print(f"  {name}: baseline={b:.4g} current={c:.4g} "
              f"(ratio {ratio:.2f})")
    if warn_only:
        print("warn-only mode: not failing the build.")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
