// tbnet — command-line front end for the whole workflow.
//
//   tbnet train-victim  --family vgg --depth 18 --classes 10 --width 0.25 \
//                       --epochs 12 --out victim.bin
//   tbnet protect       --victim victim.bin --family vgg --depth 18 \
//                       --classes 10 --width 0.25 --out protected.tbn
//   tbnet evaluate      --model protected.tbn --classes 10
//   tbnet deploy        --model protected.tbn --victim victim.bin \
//                       --family vgg --depth 18 --classes 10 --width 0.25
//   tbnet attack        --model protected.tbn --classes 10 --fraction 0.5
//
// Data is always the synthetic CIFAR-shaped task (see README.md), controlled
// by --classes/--train-size/--test-size/--data-seed/--difficulty.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "attack/attacks.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "data/synthetic_cifar.h"
#include "models/model_zoo.h"
#include "models/trainer.h"
#include "nn/serialize.h"
#include "runtime/deployed.h"
#include "runtime/profiler.h"
#include "tee/cost_model.h"
#include "tee/device_profile.h"
#include "tee/optee_api.h"

namespace {

using namespace tbnet;

/// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::invalid_argument(std::string("expected --flag, got ") +
                                    argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string str(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int integer(const std::string& key, int fallback) const {
    return static_cast<int>(num(key, fallback));
  }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

models::ModelConfig model_config(const Args& args) {
  models::ModelConfig cfg;
  const std::string family = args.str("family", "vgg");
  if (family == "vgg") {
    cfg.family = models::Family::kVgg;
    cfg.depth = args.integer("depth", 18);
  } else if (family == "resnet") {
    cfg.family = models::Family::kResNet;
    cfg.depth = args.integer("depth", 20);
  } else {
    throw std::invalid_argument("--family must be vgg or resnet");
  }
  cfg.classes = args.integer("classes", 10);
  cfg.width_mult = args.num("width", 0.25);
  cfg.seed = static_cast<uint64_t>(args.integer("seed", 1));
  return cfg;
}

std::pair<data::SyntheticCifar, data::SyntheticCifar> datasets(
    const Args& args) {
  return data::SyntheticCifar::make_split(
      args.integer("classes", 10), args.integer("train-size", 400),
      args.integer("test-size", 200),
      static_cast<uint64_t>(args.integer("data-seed", 77)), 32,
      args.num("difficulty", 0.45));
}

nn::Sequential load_victim(const std::string& path) {
  auto layer = nn::load_model_file(path);
  auto* seq = dynamic_cast<nn::Sequential*>(layer.get());
  if (seq == nullptr) {
    throw std::runtime_error(path + " does not contain a victim model");
  }
  return std::move(*seq);
}

core::TwoBranchModel load_protected(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  return core::load_two_branch(f);
}

int cmd_train_victim(const Args& args) {
  const auto cfg = model_config(args);
  auto [train, test] = datasets(args);
  std::printf("training victim %s on %lld-class synthetic data...\n",
              cfg.name().c_str(), static_cast<long long>(cfg.classes));
  nn::Sequential victim = models::build_victim(cfg);
  models::TrainConfig tc;
  tc.epochs = args.integer("epochs", 10);
  tc.batch_size = args.integer("batch", 64);
  tc.lr = args.num("lr", 0.02);
  tc.augment = args.has("augment");
  tc.log_every = 1;
  models::train_classifier(victim, train, test, tc);
  std::printf("final accuracy: %.2f%%\n",
              100 * models::evaluate(victim, test));
  const std::string out = args.str("out", "victim.bin");
  nn::save_model_file(out, victim);
  std::printf("saved -> %s\n", out.c_str());
  return 0;
}

int cmd_protect(const Args& args) {
  const auto cfg = model_config(args);
  auto [train, test] = datasets(args);
  nn::Sequential victim = load_victim(args.str("victim", "victim.bin"));
  std::printf("victim accuracy: %.2f%%\n",
              100 * models::evaluate(victim, test));

  core::TwoBranchModel model = models::build_two_branch(victim, cfg);
  core::PipelineConfig pc;
  pc.transfer.epochs = args.integer("transfer-epochs", 8);
  pc.transfer.lr = args.num("lr", 0.02);
  pc.transfer.lambda = args.num("lambda", 1e-4);
  pc.transfer.augment = false;
  pc.prune.ratio = args.num("prune-ratio", 0.10);
  pc.prune.acc_drop_budget = args.num("drop-budget", 0.06);
  pc.prune.max_iterations = args.integer("max-prune-iters", 4);
  pc.prune.finetune.epochs = args.integer("finetune-epochs", 1);
  pc.prune.finetune.augment = false;
  pc.rollback = !args.has("no-rollback");
  pc.recovery.epochs = args.integer("recovery-epochs", 2);
  pc.recovery.augment = false;

  const auto report = core::TbnetPipeline(pc).run(
      model, models::prune_points(cfg), train, test);
  std::printf(
      "pipeline: transfer %.2f%% -> pruned %.2f%% (%d iters) -> final %.2f%%\n",
      100 * report.transfer_acc, 100 * report.pruned_acc,
      report.accepted_prune_iterations, 100 * report.final_acc);
  std::printf("attacker direct use: %.2f%% | divergent groups: %d\n",
              100 * report.attack_direct_acc, report.arch_divergence);

  const std::string out = args.str("out", "protected.tbn");
  std::ofstream f(out, std::ios::binary);
  core::save_two_branch(f, model);
  std::printf("saved -> %s\n", out.c_str());
  if (args.has("report")) {
    core::write_text_file(args.str("report", "report.json"),
                          core::to_json(report, cfg.name()));
    std::printf("report -> %s\n", args.str("report", "report.json").c_str());
  }
  return 0;
}

int cmd_evaluate(const Args& args) {
  core::TwoBranchModel model = load_protected(args.str("model", "protected.tbn"));
  auto [train, test] = datasets(args);
  (void)train;
  std::printf("fused (user-visible):   %.2f%%\n",
              100 * core::evaluate_fused(model, test));
  std::printf("M_T alone (no REE):     %.2f%%\n",
              100 * core::evaluate_secure_only(model, test));
  std::printf("M_R alone (attacker):   %.2f%%\n",
              100 * core::evaluate_exposed_only(model, test));
  return 0;
}

int cmd_deploy(const Args& args) {
  core::TwoBranchModel model = load_protected(args.str("model", "protected.tbn"));
  nn::Sequential victim = load_victim(args.str("victim", "victim.bin"));
  auto [train, test] = datasets(args);
  (void)train;

  const tee::DeviceProfile profile = tee::DeviceProfile::rpi3();
  tee::SecureWorld device(profile.secure_mem_budget);
  tee::TeeContext ctx(device);
  runtime::DeployedTBNet deployed(model, ctx);

  const int n = args.integer("samples", 50);
  int correct = 0;
  for (int i = 0; i < n && i < test.size(); ++i) {
    const data::Sample s = test.get(i);
    correct += (deployed.predict(s.image) == s.label);
  }
  std::printf("on-device accuracy (%d samples): %.2f%%\n", n,
              100.0 * correct / n);
  std::printf("channel: %.1f KiB into TEE, %lld B leaked\n",
              ctx.channel().bytes_into_tee() / 1024.0,
              static_cast<long long>(ctx.channel().leaked_bytes()));
  std::printf("secure memory peak: %.1f KiB of %.1f MiB budget\n\n",
              device.memory().peak_bytes() / 1024.0,
              profile.secure_mem_budget / (1024.0 * 1024.0));

  const tee::CostModel cm(profile);
  const auto prof =
      runtime::profile_deployment(model, victim, cm, Shape{3, 32, 32});
  std::fputs(runtime::format_profile(prof).c_str(), stdout);
  return 0;
}

int cmd_attack(const Args& args) {
  core::TwoBranchModel model = load_protected(args.str("model", "protected.tbn"));
  auto [train, test] = datasets(args);
  std::printf("direct use of lifted M_R: %.2f%%\n",
              100 * attack::direct_use_accuracy(model, test));
  attack::FineTuneConfig ft;
  ft.train.epochs = args.integer("epochs", 4);
  ft.train.batch_size = 64;
  ft.train.lr = args.num("lr", 0.02);
  ft.train.augment = false;
  const double fraction = args.num("fraction", 1.0);
  const auto r = attack::fine_tune_attack(model, train, test, fraction, ft);
  std::printf("fine-tuned with %.0f%% of data: %.2f%%\n", 100 * fraction,
              100 * r.accuracy);
  return 0;
}

void usage() {
  std::fputs(
      "usage: tbnet <command> [--flag value ...]\n"
      "commands:\n"
      "  train-victim   train and save a victim model\n"
      "  protect        run the six-step TBNet pipeline on a victim\n"
      "  evaluate       fused / secure-only / exposed-only accuracy\n"
      "  deploy         run on the simulated OP-TEE device + profile\n"
      "  attack         direct-use and fine-tuning attacks on M_R\n"
      "common flags: --family vgg|resnet --depth N --classes N --width W\n"
      "              --train-size N --test-size N --data-seed N --difficulty D\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "train-victim") return cmd_train_victim(args);
    if (cmd == "protect") return cmd_protect(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "deploy") return cmd_deploy(args);
    if (cmd == "attack") return cmd_attack(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
